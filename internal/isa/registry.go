package isa

// The architecture registry opens the Arch space: an architecture and its
// instruction pool are registry entries, not enum cases, so a new ISA (a
// RISC-V in-order pool, a VLIW DSP) is data handed to DefineArch rather
// than a fork of this package.
//
// Identity discipline: the two legacy architectures keep their historical
// small ids (ARM64 = 0, X86 = 1) because those ids are folded — via the
// JSON encoding of platform.Spec — into persistent content-addressed cache
// keys; changing them would orphan every castore entry written before the
// registry existed. Every other architecture derives its id from a stable
// 62-bit FNV-1a hash of its name, so two processes that load the same spec
// file agree on the id (and therefore on every downstream cache key)
// without coordinating registration order.

import (
	"fmt"
	"sort"
	"sync"
)

type archEntry struct {
	name string
	pool *Pool  // nil for interned (pool-less) bindings
	hash uint64 // content hash of the pool definition; 0 when pool-less
}

var (
	archMu      sync.RWMutex
	archsByName = make(map[string]Arch)
	archsByID   = make(map[Arch]*archEntry)
)

func init() {
	mustRegisterBuiltin(ARM64, ARM64Pool())
	mustRegisterBuiltin(X86, X86Pool())
}

func mustRegisterBuiltin(id Arch, pool *Pool) {
	name := builtinArchName(id)
	archsByName[name] = id
	archsByID[id] = &archEntry{name: name, pool: pool, hash: poolContentHash(pool)}
}

// builtinArchName returns the wire name of a legacy enum value ("" for
// non-builtins); it exists so init can name the builtins before the
// registry is populated.
func builtinArchName(a Arch) string {
	switch a {
	case ARM64:
		return "arm64"
	case X86:
		return "x86-64"
	}
	return ""
}

// ValidateArchName rejects names the spec and wire formats cannot carry:
// the lab protocol sends arch names as one space-delimited field, and spec
// files use them as JSON object keys.
func ValidateArchName(name string) error {
	if name == "" {
		return fmt.Errorf("isa: empty architecture name")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("isa: architecture name %q: character %q not in [a-z0-9._-]", name, r)
		}
	}
	return nil
}

// archID derives the stable id for an architecture name: the legacy ids
// for the two builtins, a 62-bit FNV-1a of the name for everything else.
func archID(name string) Arch {
	switch name {
	case "arm64":
		return ARM64
	case "x86-64":
		return X86
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	id := Arch(h & 0x3fffffffffffffff)
	if id < 16 { // clear of the legacy enum range
		id += 16
	}
	return id
}

// poolContentHash folds every field of every definition (plus the resource
// counts) so DefineArch can tell an idempotent re-registration from a
// conflicting one.
func poolContentHash(p *Pool) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff // field separator
		h *= prime64
	}
	mix(fmt.Sprintf("%d/%d/%d", p.IntRegs, p.VecRegs, p.MemSlots))
	for i := range p.Defs {
		d := &p.Defs[i]
		mix(fmt.Sprintf("%s|%d|%d|%d|%d|%b|%d|%d|%t|%d|%t",
			d.Mnemonic, d.Class, d.Unit, d.Latency, d.Block,
			d.Charge, d.RegFile, d.NSrc, d.DestIsSrc, d.Mem, d.NoDest))
	}
	return h
}

// DefineArch registers a named architecture together with its instruction
// pool and returns its stable Arch id. Re-defining a name with an
// identical pool is a no-op returning the existing id; a conflicting
// definition is an error. The returned id is what platform specs carry and
// what persistent cache keys fold, so it must not depend on registration
// order — see archID.
func DefineArch(name string, defs []Def, intRegs, vecRegs, memSlots int) (Arch, error) {
	if err := ValidateArchName(name); err != nil {
		return 0, err
	}
	id := archID(name)
	pool, err := NewPool(id, defs, intRegs, vecRegs, memSlots)
	if err != nil {
		return 0, fmt.Errorf("isa: architecture %q: %w", name, err)
	}
	hash := poolContentHash(pool)

	archMu.Lock()
	defer archMu.Unlock()
	if prev, ok := archsByID[id]; ok {
		if prev.name != name {
			return 0, fmt.Errorf("isa: architecture id collision: %q and %q hash to the same id", name, prev.name)
		}
		if prev.pool == nil {
			// Upgrade an interned binding with its pool.
			prev.pool, prev.hash = pool, hash
			return id, nil
		}
		if prev.hash != hash {
			return 0, fmt.Errorf("isa: architecture %q already registered with a different instruction pool", name)
		}
		return id, nil
	}
	archsByName[name] = id
	archsByID[id] = &archEntry{name: name, pool: pool, hash: hash}
	return id, nil
}

// InternArch binds a name to its Arch id without attaching an instruction
// pool. Capability records received over the wire use it so a workstation
// can reason about a rig's architecture (placement, reporting) even when
// the pool itself has not been loaded locally; any operation that needs to
// assemble instructions still fails until DefineArch supplies the pool.
func InternArch(name string) (Arch, error) {
	if err := ValidateArchName(name); err != nil {
		return 0, err
	}
	id := archID(name)
	archMu.Lock()
	defer archMu.Unlock()
	if prev, ok := archsByID[id]; ok {
		if prev.name != name {
			return 0, fmt.Errorf("isa: architecture id collision: %q and %q hash to the same id", name, prev.name)
		}
		return id, nil
	}
	archsByName[name] = id
	archsByID[id] = &archEntry{name: name}
	return id, nil
}

// ArchNames lists every registered architecture name, sorted.
func ArchNames() []string {
	archMu.RLock()
	defer archMu.RUnlock()
	out := make([]string, 0, len(archsByName))
	for name := range archsByName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// archName returns the registered name of an arch ("" if unknown).
func archName(a Arch) string {
	archMu.RLock()
	defer archMu.RUnlock()
	if e, ok := archsByID[a]; ok {
		return e.name
	}
	return ""
}

// lookupArch resolves a registered name.
func lookupArch(name string) (Arch, bool) {
	archMu.RLock()
	defer archMu.RUnlock()
	id, ok := archsByName[name]
	return id, ok
}

// archPool returns the registered pool for an arch (nil if the arch is
// unknown or only interned).
func archPool(a Arch) *Pool {
	archMu.RLock()
	defer archMu.RUnlock()
	if e, ok := archsByID[a]; ok {
		return e.pool
	}
	return nil
}
