package isa

// The built-in pools encode the Section 3.3 instruction mixes. Latencies
// are representative of the modelled cores (single-cycle simple integer
// ops, 3-5 cycle multiplies and FP, 10+ cycle unpipelined divides and
// square roots, L1-hit loads of a few cycles). Charges are calibrated so
// that wide SIMD and memory operations draw the most switching current and
// stalled divide cycles the least, giving the GA genuine high- and
// low-current phases to compose (Section 8.3).

// ARM64Pool returns the ARMv8-like pool used for the Cortex-A72/A53 runs:
// short/long integer, FP, SIMD, loads/stores and dummy unconditional
// branches (pointing to the next instruction, per Section 3.3).
func ARM64Pool() *Pool {
	defs := []Def{
		{Mnemonic: "mov", Class: IntShort, Unit: UnitALU, Latency: 1, Block: 1, Charge: 0.10e-9, RegFile: RegInt, NSrc: 1},
		{Mnemonic: "add", Class: IntShort, Unit: UnitALU, Latency: 1, Block: 1, Charge: 0.12e-9, RegFile: RegInt, NSrc: 2},
		{Mnemonic: "sub", Class: IntShort, Unit: UnitALU, Latency: 1, Block: 1, Charge: 0.12e-9, RegFile: RegInt, NSrc: 2},
		{Mnemonic: "eor", Class: IntShort, Unit: UnitALU, Latency: 1, Block: 1, Charge: 0.11e-9, RegFile: RegInt, NSrc: 2},
		{Mnemonic: "and", Class: IntShort, Unit: UnitALU, Latency: 1, Block: 1, Charge: 0.10e-9, RegFile: RegInt, NSrc: 2},
		{Mnemonic: "orr", Class: IntShort, Unit: UnitALU, Latency: 1, Block: 1, Charge: 0.10e-9, RegFile: RegInt, NSrc: 2},
		{Mnemonic: "lsl", Class: IntShort, Unit: UnitALU, Latency: 1, Block: 1, Charge: 0.11e-9, RegFile: RegInt, NSrc: 2},
		{Mnemonic: "mul", Class: IntLong, Unit: UnitMulDiv, Latency: 3, Block: 1, Charge: 0.25e-9, RegFile: RegInt, NSrc: 2},
		{Mnemonic: "madd", Class: IntLong, Unit: UnitMulDiv, Latency: 3, Block: 1, Charge: 0.28e-9, RegFile: RegInt, NSrc: 2},
		{Mnemonic: "sdiv", Class: IntLong, Unit: UnitMulDiv, Latency: 6, Block: 6, Charge: 0.04e-9, RegFile: RegInt, NSrc: 2},
		{Mnemonic: "fadd", Class: Float, Unit: UnitFP, Latency: 3, Block: 1, Charge: 0.28e-9, RegFile: RegVec, NSrc: 2},
		{Mnemonic: "fsub", Class: Float, Unit: UnitFP, Latency: 3, Block: 1, Charge: 0.28e-9, RegFile: RegVec, NSrc: 2},
		{Mnemonic: "fmul", Class: Float, Unit: UnitFP, Latency: 3, Block: 1, Charge: 0.32e-9, RegFile: RegVec, NSrc: 2},
		{Mnemonic: "fmadd", Class: Float, Unit: UnitFP, Latency: 4, Block: 1, Charge: 0.38e-9, RegFile: RegVec, NSrc: 2},
		{Mnemonic: "fdiv", Class: Float, Unit: UnitFP, Latency: 10, Block: 10, Charge: 0.05e-9, RegFile: RegVec, NSrc: 2},
		{Mnemonic: "fsqrt", Class: Float, Unit: UnitFP, Latency: 12, Block: 12, Charge: 0.05e-9, RegFile: RegVec, NSrc: 1},
		{Mnemonic: "vadd", Class: SIMD, Unit: UnitSIMD, Latency: 2, Block: 1, Charge: 0.45e-9, RegFile: RegVec, NSrc: 2},
		{Mnemonic: "vmul", Class: SIMD, Unit: UnitSIMD, Latency: 4, Block: 1, Charge: 0.55e-9, RegFile: RegVec, NSrc: 2},
		{Mnemonic: "vfma", Class: SIMD, Unit: UnitSIMD, Latency: 4, Block: 1, Charge: 0.60e-9, RegFile: RegVec, NSrc: 2},
		{Mnemonic: "vsub", Class: SIMD, Unit: UnitSIMD, Latency: 2, Block: 1, Charge: 0.45e-9, RegFile: RegVec, NSrc: 2},
		{Mnemonic: "veor", Class: SIMD, Unit: UnitSIMD, Latency: 1, Block: 1, Charge: 0.40e-9, RegFile: RegVec, NSrc: 2},
		{Mnemonic: "ldr", Class: Mem, Unit: UnitLS, Latency: 3, Block: 1, Charge: 0.30e-9, RegFile: RegInt, NSrc: 0, Mem: MemLoad},
		{Mnemonic: "str", Class: Mem, Unit: UnitLS, Latency: 1, Block: 1, Charge: 0.26e-9, RegFile: RegInt, NSrc: 1, Mem: MemStore, NoDest: true},
		{Mnemonic: "b", Class: Branch, Unit: UnitBranch, Latency: 1, Block: 1, Charge: 0.06e-9, RegFile: RegInt, NSrc: 0, NoDest: true},
	}
	p, err := NewPool(ARM64, defs, 16, 16, 8)
	if err != nil {
		panic("isa: built-in ARM64 pool invalid: " + err.Error())
	}
	return p
}

// X86Pool returns the x86-64/SSE2-like pool used for the Athlon II runs.
// Following Section 3.3, there are no explicit load/store instructions;
// memory traffic comes from integer ops with memory operands and from mov
// to/from memory. SIMD uses SSE2-style packed ops.
func X86Pool() *Pool {
	defs := []Def{
		{Mnemonic: "mov", Class: IntShort, Unit: UnitALU, Latency: 1, Block: 1, Charge: 0.11e-9, RegFile: RegInt, NSrc: 1},
		{Mnemonic: "add", Class: IntShort, Unit: UnitALU, Latency: 1, Block: 1, Charge: 0.13e-9, RegFile: RegInt, NSrc: 1, DestIsSrc: true},
		{Mnemonic: "sub", Class: IntShort, Unit: UnitALU, Latency: 1, Block: 1, Charge: 0.13e-9, RegFile: RegInt, NSrc: 1, DestIsSrc: true},
		{Mnemonic: "xor", Class: IntShort, Unit: UnitALU, Latency: 1, Block: 1, Charge: 0.12e-9, RegFile: RegInt, NSrc: 1, DestIsSrc: true},
		{Mnemonic: "and", Class: IntShort, Unit: UnitALU, Latency: 1, Block: 1, Charge: 0.11e-9, RegFile: RegInt, NSrc: 1, DestIsSrc: true},
		{Mnemonic: "or", Class: IntShort, Unit: UnitALU, Latency: 1, Block: 1, Charge: 0.11e-9, RegFile: RegInt, NSrc: 1, DestIsSrc: true},
		{Mnemonic: "shl", Class: IntShort, Unit: UnitALU, Latency: 1, Block: 1, Charge: 0.12e-9, RegFile: RegInt, NSrc: 1, DestIsSrc: true},
		{Mnemonic: "imul", Class: IntLong, Unit: UnitMulDiv, Latency: 3, Block: 1, Charge: 0.30e-9, RegFile: RegInt, NSrc: 1, DestIsSrc: true},
		{Mnemonic: "idiv", Class: IntLong, Unit: UnitMulDiv, Latency: 20, Block: 20, Charge: 0.04e-9, RegFile: RegInt, NSrc: 1, DestIsSrc: true},
		{Mnemonic: "addmem", Class: IntShortMem, Unit: UnitALU, Latency: 4, Block: 1, Charge: 0.35e-9, RegFile: RegInt, NSrc: 0, DestIsSrc: true, Mem: MemRead},
		{Mnemonic: "submem", Class: IntShortMem, Unit: UnitALU, Latency: 4, Block: 1, Charge: 0.35e-9, RegFile: RegInt, NSrc: 0, DestIsSrc: true, Mem: MemRead},
		{Mnemonic: "imulmem", Class: IntLongMem, Unit: UnitMulDiv, Latency: 6, Block: 1, Charge: 0.42e-9, RegFile: RegInt, NSrc: 0, DestIsSrc: true, Mem: MemRead},
		{Mnemonic: "movload", Class: IntShortMem, Unit: UnitLS, Latency: 3, Block: 1, Charge: 0.32e-9, RegFile: RegInt, NSrc: 0, Mem: MemLoad},
		{Mnemonic: "movstore", Class: IntShortMem, Unit: UnitLS, Latency: 1, Block: 1, Charge: 0.28e-9, RegFile: RegInt, NSrc: 1, Mem: MemStore, NoDest: true},
		{Mnemonic: "addsd", Class: Float, Unit: UnitFP, Latency: 3, Block: 1, Charge: 0.30e-9, RegFile: RegVec, NSrc: 1, DestIsSrc: true},
		{Mnemonic: "mulsd", Class: Float, Unit: UnitFP, Latency: 4, Block: 1, Charge: 0.34e-9, RegFile: RegVec, NSrc: 1, DestIsSrc: true},
		{Mnemonic: "divsd", Class: Float, Unit: UnitFP, Latency: 17, Block: 17, Charge: 0.05e-9, RegFile: RegVec, NSrc: 1, DestIsSrc: true},
		{Mnemonic: "sqrtsd", Class: Float, Unit: UnitFP, Latency: 19, Block: 19, Charge: 0.05e-9, RegFile: RegVec, NSrc: 1},
		{Mnemonic: "paddd", Class: SIMD, Unit: UnitSIMD, Latency: 2, Block: 1, Charge: 0.48e-9, RegFile: RegVec, NSrc: 1, DestIsSrc: true},
		{Mnemonic: "addps", Class: SIMD, Unit: UnitSIMD, Latency: 3, Block: 1, Charge: 0.52e-9, RegFile: RegVec, NSrc: 1, DestIsSrc: true},
		{Mnemonic: "mulps", Class: SIMD, Unit: UnitSIMD, Latency: 4, Block: 1, Charge: 0.60e-9, RegFile: RegVec, NSrc: 1, DestIsSrc: true},
		{Mnemonic: "subps", Class: SIMD, Unit: UnitSIMD, Latency: 3, Block: 1, Charge: 0.52e-9, RegFile: RegVec, NSrc: 1, DestIsSrc: true},
		{Mnemonic: "pxor", Class: SIMD, Unit: UnitSIMD, Latency: 1, Block: 1, Charge: 0.42e-9, RegFile: RegVec, NSrc: 1, DestIsSrc: true},
		{Mnemonic: "sqrtps", Class: SIMD, Unit: UnitSIMD, Latency: 18, Block: 18, Charge: 0.06e-9, RegFile: RegVec, NSrc: 1},
	}
	p, err := NewPool(X86, defs, 14, 16, 8)
	if err != nil {
		panic("isa: built-in x86 pool invalid: " + err.Error())
	}
	return p
}

// PoolFor returns the registered pool for an architecture: the process-
// shared built-in pools for the two legacy arches, the pool supplied to
// DefineArch for spec-registered ones, nil for an architecture that is
// unknown or only interned from a wire capability record (callers that
// need to assemble instructions must load the defining spec first).
func PoolFor(arch Arch) *Pool {
	return archPool(arch)
}
