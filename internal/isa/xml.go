package isa

import (
	"encoding/xml"
	"fmt"
	"io"
)

// The XML instruction-pool format mirrors the user input file of the
// paper's GA framework (Section 3.2): the user lists the instructions the
// GA may use, the registers each instruction may touch, and the memory
// slots available to memory instructions.
//
//	<pool arch="arm64" int-regs="16" vec-regs="16" mem-slots="8">
//	  <instruction mnemonic="add" class="int-short" unit="alu"
//	               latency="1" block="1" charge="1.2e-10"
//	               regfile="int" nsrc="2"/>
//	  ...
//	</pool>

type xmlPool struct {
	XMLName  xml.Name  `xml:"pool"`
	Arch     string    `xml:"arch,attr"`
	IntRegs  int       `xml:"int-regs,attr"`
	VecRegs  int       `xml:"vec-regs,attr"`
	MemSlots int       `xml:"mem-slots,attr"`
	Insts    []xmlInst `xml:"instruction"`
}

type xmlInst struct {
	Mnemonic  string  `xml:"mnemonic,attr"`
	Class     string  `xml:"class,attr"`
	Unit      string  `xml:"unit,attr"`
	Latency   int     `xml:"latency,attr"`
	Block     int     `xml:"block,attr"`
	Charge    float64 `xml:"charge,attr"`
	RegFile   string  `xml:"regfile,attr"`
	NSrc      int     `xml:"nsrc,attr"`
	DestIsSrc bool    `xml:"dest-is-src,attr"`
	Mem       string  `xml:"mem,attr"`
	NoDest    bool    `xml:"no-dest,attr"`
}

var memModeNames = map[MemMode]string{
	MemNone:  "none",
	MemLoad:  "load",
	MemStore: "store",
	MemRead:  "read-operand",
}

func parseMemMode(s string) (MemMode, error) {
	if s == "" {
		return MemNone, nil
	}
	for m, name := range memModeNames {
		if name == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("isa: unknown memory mode %q", s)
}

// LoadPoolXML parses a pool description from r.
func LoadPoolXML(r io.Reader) (*Pool, error) {
	var xp xmlPool
	if err := xml.NewDecoder(r).Decode(&xp); err != nil {
		return nil, fmt.Errorf("isa: parsing pool XML: %w", err)
	}
	arch, err := ParseArch(xp.Arch)
	if err != nil {
		return nil, err
	}
	defs := make([]Def, 0, len(xp.Insts))
	for _, xi := range xp.Insts {
		class, err := ParseClass(xi.Class)
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %q: %w", xi.Mnemonic, err)
		}
		unit, err := ParseUnit(xi.Unit)
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %q: %w", xi.Mnemonic, err)
		}
		mem, err := parseMemMode(xi.Mem)
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %q: %w", xi.Mnemonic, err)
		}
		var rf RegFile
		switch xi.RegFile {
		case "int", "":
			rf = RegInt
		case "vec":
			rf = RegVec
		default:
			return nil, fmt.Errorf("isa: instruction %q: unknown register file %q", xi.Mnemonic, xi.RegFile)
		}
		block := xi.Block
		if block == 0 {
			block = 1
		}
		defs = append(defs, Def{
			Mnemonic: xi.Mnemonic, Class: class, Unit: unit,
			Latency: xi.Latency, Block: block, Charge: xi.Charge,
			RegFile: rf, NSrc: xi.NSrc, DestIsSrc: xi.DestIsSrc,
			Mem: mem, NoDest: xi.NoDest,
		})
	}
	return NewPool(arch, defs, xp.IntRegs, xp.VecRegs, xp.MemSlots)
}

// WritePoolXML serializes the pool in the format LoadPoolXML reads.
func WritePoolXML(w io.Writer, p *Pool) error {
	xp := xmlPool{
		Arch:     p.Arch.String(),
		IntRegs:  p.IntRegs,
		VecRegs:  p.VecRegs,
		MemSlots: p.MemSlots,
	}
	for i := range p.Defs {
		d := &p.Defs[i]
		var rf string
		if d.RegFile == RegVec {
			rf = "vec"
		} else {
			rf = "int"
		}
		xp.Insts = append(xp.Insts, xmlInst{
			Mnemonic: d.Mnemonic, Class: d.Class.String(), Unit: d.Unit.String(),
			Latency: d.Latency, Block: d.Block, Charge: d.Charge,
			RegFile: rf, NSrc: d.NSrc, DestIsSrc: d.DestIsSrc,
			Mem: memModeNames[d.Mem], NoDest: d.NoDest,
		})
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(xp); err != nil {
		return fmt.Errorf("isa: encoding pool XML: %w", err)
	}
	return enc.Close()
}
