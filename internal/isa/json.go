package isa

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// The JSON instruction-pool format is the spec-registry counterpart of the
// XML input format (xml.go): a v2 platform spec file embeds one of these
// objects per data-defined architecture, so adding an ISA is a table in
// the spec file rather than a Go change.
//
//	{
//	  "int_regs": 16, "vec_regs": 16, "mem_slots": 8,
//	  "instructions": [
//	    {"mnemonic": "add", "class": "int-short", "unit": "alu",
//	     "latency": 1, "charge": 1.2e-10, "regfile": "int", "nsrc": 2}
//	  ]
//	}
//
// Decoding is strict: unknown fields, unknown class/unit/regfile/mem
// names and definitions that fail Def.Validate are errors naming the
// offending instruction.

type poolJSON struct {
	IntRegs      int        `json:"int_regs"`
	VecRegs      int        `json:"vec_regs"`
	MemSlots     int        `json:"mem_slots"`
	Instructions []instJSON `json:"instructions"`
}

type instJSON struct {
	Mnemonic  string  `json:"mnemonic"`
	Class     string  `json:"class"`
	Unit      string  `json:"unit"`
	Latency   int     `json:"latency"`
	Block     int     `json:"block,omitempty"` // 0 = fully pipelined (1)
	Charge    float64 `json:"charge"`
	RegFile   string  `json:"regfile,omitempty"` // "int" (default) or "vec"
	NSrc      int     `json:"nsrc,omitempty"`
	DestIsSrc bool    `json:"dest_is_src,omitempty"`
	Mem       string  `json:"mem,omitempty"` // "", "load", "store", "read-operand"
	NoDest    bool    `json:"no_dest,omitempty"`
}

// parsePoolJSON decodes a strict pool description into definitions plus
// resource counts (without building or registering a pool).
func parsePoolJSON(data []byte) ([]Def, int, int, int, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var pj poolJSON
	if err := dec.Decode(&pj); err != nil {
		return nil, 0, 0, 0, fmt.Errorf("isa: decoding pool: %w", err)
	}
	defs := make([]Def, 0, len(pj.Instructions))
	for i, ij := range pj.Instructions {
		where := ij.Mnemonic
		if where == "" {
			where = fmt.Sprintf("#%d", i)
		}
		class, err := ParseClass(ij.Class)
		if err != nil {
			return nil, 0, 0, 0, fmt.Errorf("isa: instruction %s: %w", where, err)
		}
		unit, err := ParseUnit(ij.Unit)
		if err != nil {
			return nil, 0, 0, 0, fmt.Errorf("isa: instruction %s: %w", where, err)
		}
		mem, err := parseMemMode(ij.Mem)
		if err != nil {
			return nil, 0, 0, 0, fmt.Errorf("isa: instruction %s: %w", where, err)
		}
		var rf RegFile
		switch ij.RegFile {
		case "int", "":
			rf = RegInt
		case "vec":
			rf = RegVec
		default:
			return nil, 0, 0, 0, fmt.Errorf("isa: instruction %s: unknown register file %q", where, ij.RegFile)
		}
		block := ij.Block
		if block == 0 {
			block = 1
		}
		defs = append(defs, Def{
			Mnemonic: ij.Mnemonic, Class: class, Unit: unit,
			Latency: ij.Latency, Block: block, Charge: ij.Charge,
			RegFile: rf, NSrc: ij.NSrc, DestIsSrc: ij.DestIsSrc,
			Mem: mem, NoDest: ij.NoDest,
		})
	}
	return defs, pj.IntRegs, pj.VecRegs, pj.MemSlots, nil
}

// DefineArchJSON registers a named architecture from its JSON pool
// description, with DefineArch's idempotency rules.
func DefineArchJSON(name string, data []byte) (Arch, error) {
	defs, intRegs, vecRegs, memSlots, err := parsePoolJSON(data)
	if err != nil {
		return 0, fmt.Errorf("isa: architecture %q: %w", name, err)
	}
	return DefineArch(name, defs, intRegs, vecRegs, memSlots)
}

// MarshalPoolJSON serializes a pool in the format DefineArchJSON reads.
func MarshalPoolJSON(p *Pool) ([]byte, error) {
	pj := poolJSON{
		IntRegs:  p.IntRegs,
		VecRegs:  p.VecRegs,
		MemSlots: p.MemSlots,
	}
	for i := range p.Defs {
		d := &p.Defs[i]
		rf := ""
		if d.RegFile == RegVec {
			rf = "vec"
		}
		mem := ""
		if d.Mem != MemNone {
			mem = memModeNames[d.Mem]
		}
		pj.Instructions = append(pj.Instructions, instJSON{
			Mnemonic: d.Mnemonic, Class: d.Class.String(), Unit: d.Unit.String(),
			Latency: d.Latency, Block: d.Block, Charge: d.Charge,
			RegFile: rf, NSrc: d.NSrc, DestIsSrc: d.DestIsSrc,
			Mem: mem, NoDest: d.NoDest,
		})
	}
	return json.Marshal(pj)
}
