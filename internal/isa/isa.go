// Package isa defines the instruction-set abstractions the stress-test
// generator works with: instruction classes, per-instruction timing and
// switching-charge figures, architectural register pools, and the
// instruction *instances* (with concrete operands) that make up a GA
// individual.
//
// Two built-in pools mirror the paper's Section 3.3 instruction mixes: an
// ARMv8-like pool (used for the Cortex-A72 and Cortex-A53 case studies) and
// an x86-64/SSE2-like pool (AMD Athlon II). Pools can also be loaded from
// the XML input format described in Section 3.2 (see xml.go).
//
// Electrical model: each definition carries Charge, the switching charge in
// coulombs the instruction moves per busy cycle. At clock frequency f the
// instruction contributes Charge·f amps while it occupies its unit, which is
// how CPU frequency scaling naturally modulates both loop frequency and
// current amplitude in the fast resonance-sweep method (paper Section 5.3).
package isa

import (
	"fmt"
	"math/rand"
)

// Arch identifies an instruction-set architecture. Beyond the two legacy
// built-ins, values are registry entries created by DefineArch (see
// registry.go); the numeric value of a registered arch is a stable hash of
// its name, so spec-loaded architectures keep the same identity (and the
// same persistent cache keys) in every process.
type Arch int

// The built-in architectures, pre-registered with their legacy ids.
const (
	ARM64 Arch = iota
	X86
)

// String returns the registered name of the architecture.
func (a Arch) String() string {
	if name := archName(a); name != "" {
		return name
	}
	return fmt.Sprintf("arch(%d)", int(a))
}

// ParseArch converts a name produced by Arch.String back to an Arch. Any
// architecture registered with DefineArch (or interned from a capability
// record) resolves; legacy aliases of the x86 built-in are accepted.
func ParseArch(s string) (Arch, error) {
	switch s {
	case "x86", "amd64":
		return X86, nil
	}
	if id, ok := lookupArch(s); ok {
		return id, nil
	}
	return 0, fmt.Errorf("isa: unknown architecture %q", s)
}

// Class is the paper's instruction taxonomy (Table 2): branches, short- and
// long-latency integer ops (with x86 memory-operand variants), floating
// point, SIMD, and ARM explicit memory instructions.
type Class int

// Instruction classes.
const (
	Branch Class = iota
	IntShort
	IntLong
	IntShortMem // x86 only: short integer op with a memory operand
	IntLongMem  // x86 only: long integer op with a memory operand
	Float
	SIMD
	Mem // ARM only: explicit load/store
)

var classNames = map[Class]string{
	Branch:      "branch",
	IntShort:    "int-short",
	IntLong:     "int-long",
	IntShortMem: "int-short-mem",
	IntLongMem:  "int-long-mem",
	Float:       "float",
	SIMD:        "simd",
	Mem:         "mem",
}

// String returns the class name used in reports and XML files.
func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ParseClass converts a class name back to a Class.
func ParseClass(s string) (Class, error) {
	for c, name := range classNames {
		if name == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("isa: unknown instruction class %q", s)
}

// Unit is the functional-unit kind an instruction executes on.
type Unit int

// Functional units.
const (
	UnitALU Unit = iota
	UnitMulDiv
	UnitFP
	UnitSIMD
	UnitLS
	UnitBranch
	numUnits
)

// NumUnits is the count of distinct functional-unit kinds.
const NumUnits = int(numUnits)

var unitNames = map[Unit]string{
	UnitALU:    "alu",
	UnitMulDiv: "muldiv",
	UnitFP:     "fp",
	UnitSIMD:   "simd",
	UnitLS:     "ls",
	UnitBranch: "branch",
}

// String returns the unit name used in reports and XML files.
func (u Unit) String() string {
	if s, ok := unitNames[u]; ok {
		return s
	}
	return fmt.Sprintf("unit(%d)", int(u))
}

// ParseUnit converts a unit name back to a Unit.
func ParseUnit(s string) (Unit, error) {
	for u, name := range unitNames {
		if name == s {
			return u, nil
		}
	}
	return 0, fmt.Errorf("isa: unknown functional unit %q", s)
}

// RegFile selects which register file an instruction's operands live in.
type RegFile int

// Register files.
const (
	RegInt RegFile = iota
	RegVec
)

// MemMode describes how an instruction touches memory.
type MemMode int

// Memory access modes.
const (
	MemNone  MemMode = iota
	MemLoad          // explicit load (ARM LDR) or mov reg, [mem]
	MemStore         // explicit store (ARM STR) or mov [mem], reg
	MemRead          // x86 ALU op with a memory source operand
)

// Def is an instruction definition: everything the micro-architectural and
// electrical models need to know about one mnemonic.
type Def struct {
	Mnemonic string
	Class    Class
	Unit     Unit
	// Latency is the result latency in cycles (dependents wait this long).
	Latency int
	// Block is how many cycles the unit stays busy; 1 means fully
	// pipelined, Block == Latency means unpipelined (e.g. divide).
	Block int
	// Charge is the switching charge in coulombs per busy cycle.
	Charge float64
	// RegFile is the operand register file.
	RegFile RegFile
	// NSrc is the number of register source operands (0-2).
	NSrc int
	// DestIsSrc marks two-operand (x86-style) forms where the destination
	// is also read.
	DestIsSrc bool
	// Mem is the memory behaviour.
	Mem MemMode
	// NoDest marks instructions without a register destination
	// (branches, stores).
	NoDest bool
}

// Validate reports the first inconsistency in the definition.
func (d *Def) Validate() error {
	switch {
	case d.Mnemonic == "":
		return fmt.Errorf("isa: definition with empty mnemonic")
	case d.Latency < 1:
		return fmt.Errorf("isa: %s: latency %d < 1", d.Mnemonic, d.Latency)
	case d.Block < 1 || d.Block > d.Latency:
		return fmt.Errorf("isa: %s: block %d outside [1, latency=%d]", d.Mnemonic, d.Block, d.Latency)
	case d.Charge < 0:
		return fmt.Errorf("isa: %s: negative charge %v", d.Mnemonic, d.Charge)
	case d.NSrc < 0 || d.NSrc > 2:
		return fmt.Errorf("isa: %s: %d sources outside [0,2]", d.Mnemonic, d.NSrc)
	}
	return nil
}

// Inst is an instruction instance: a definition plus concrete operands.
// Register operands are small integers indexing the architectural register
// pool of the instruction's register file; Addr indexes the fixed pool of
// (always-hitting) data addresses.
type Inst struct {
	Def  *Def
	Dest int
	Srcs [2]int
	Addr int
}

// Sources returns the register sources actually read by the instance,
// including the destination for two-operand forms.
func (in Inst) Sources() []int {
	n := in.Def.NSrc
	srcs := make([]int, 0, 3)
	for i := 0; i < n; i++ {
		srcs = append(srcs, in.Srcs[i])
	}
	if in.Def.DestIsSrc && !in.Def.NoDest {
		srcs = append(srcs, in.Dest)
	}
	return srcs
}

// Pool is the instruction universe the GA draws from, together with the
// architectural resources operands are chosen over.
type Pool struct {
	Arch     Arch
	Defs     []Def
	IntRegs  int // number of usable integer registers
	VecRegs  int // number of usable vector/FP registers
	MemSlots int // number of distinct (L1-resident) data addresses

	byMnemonic map[string]*Def
}

// NewPool validates the definitions and builds the lookup index.
func NewPool(arch Arch, defs []Def, intRegs, vecRegs, memSlots int) (*Pool, error) {
	if len(defs) == 0 {
		return nil, fmt.Errorf("isa: empty instruction pool")
	}
	if intRegs < 2 || vecRegs < 2 || memSlots < 1 {
		return nil, fmt.Errorf("isa: pool needs >=2 registers per file and >=1 memory slot (got %d/%d/%d)",
			intRegs, vecRegs, memSlots)
	}
	p := &Pool{
		Arch: arch, Defs: defs,
		IntRegs: intRegs, VecRegs: vecRegs, MemSlots: memSlots,
		byMnemonic: make(map[string]*Def, len(defs)),
	}
	for i := range p.Defs {
		d := &p.Defs[i]
		if err := d.Validate(); err != nil {
			return nil, err
		}
		if _, dup := p.byMnemonic[d.Mnemonic]; dup {
			return nil, fmt.Errorf("isa: duplicate mnemonic %q", d.Mnemonic)
		}
		p.byMnemonic[d.Mnemonic] = d
	}
	return p, nil
}

// DefByMnemonic looks up a definition by mnemonic.
func (p *Pool) DefByMnemonic(m string) (*Def, bool) {
	d, ok := p.byMnemonic[m]
	return d, ok
}

// regCount returns the register-file size for a definition.
func (p *Pool) regCount(d *Def) int {
	if d.RegFile == RegVec {
		return p.VecRegs
	}
	return p.IntRegs
}

// RandomInst draws a uniformly random instance from the pool.
func (p *Pool) RandomInst(rng *rand.Rand) Inst {
	d := &p.Defs[rng.Intn(len(p.Defs))]
	return p.randomOperands(rng, d)
}

// randomOperands gives d fresh random operands.
func (p *Pool) randomOperands(rng *rand.Rand, d *Def) Inst {
	n := p.regCount(d)
	in := Inst{Def: d}
	if !d.NoDest {
		in.Dest = rng.Intn(n)
	}
	for i := 0; i < d.NSrc; i++ {
		in.Srcs[i] = rng.Intn(n)
	}
	if d.Mem != MemNone {
		in.Addr = rng.Intn(p.MemSlots)
	}
	return in
}

// MutateOperand rewrites one random operand of the instance in place,
// implementing the paper's operand-level mutation.
func (p *Pool) MutateOperand(rng *rand.Rand, in *Inst) {
	d := in.Def
	n := p.regCount(d)
	slots := 0
	if !d.NoDest {
		slots++
	}
	slots += d.NSrc
	if d.Mem != MemNone {
		slots++
	}
	if slots == 0 {
		return
	}
	pick := rng.Intn(slots)
	if !d.NoDest {
		if pick == 0 {
			in.Dest = rng.Intn(n)
			return
		}
		pick--
	}
	if pick < d.NSrc {
		in.Srcs[pick] = rng.Intn(n)
		return
	}
	in.Addr = rng.Intn(p.MemSlots)
}

// RandomSequence draws a random instruction sequence of the given length.
func (p *Pool) RandomSequence(rng *rand.Rand, n int) []Inst {
	seq := make([]Inst, n)
	for i := range seq {
		seq[i] = p.RandomInst(rng)
	}
	return seq
}

// MixBreakdown counts the fraction of each class in a sequence, as reported
// in the paper's Table 2.
func MixBreakdown(seq []Inst) map[Class]float64 {
	if len(seq) == 0 {
		return nil
	}
	counts := make(map[Class]float64)
	for _, in := range seq {
		counts[in.Def.Class]++
	}
	for c := range counts {
		counts[c] /= float64(len(seq))
	}
	return counts
}
