package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		visits := make([]atomic.Int32, 50)
		err := ForEach(workers, len(visits), func(i int) error {
			visits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range visits {
			if n := visits[i].Load(); n != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, n)
			}
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("called") }); err != nil {
		t.Fatal(err)
	}
	called := 0
	if err := ForEach(4, 1, func(i int) error { called++; return nil }); err != nil {
		t.Fatal(err)
	}
	if called != 1 {
		t.Fatalf("single-element body called %d times", called)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 20, func(i int) error {
			if i%2 == 1 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 1" {
			t.Fatalf("workers=%d: got %v, want lowest-index failure", workers, err)
		}
	}
}

func TestForEachInlineWhenSerial(t *testing.T) {
	// Serial execution must run the body on the calling goroutine, in order.
	var order []int
	if err := ForEach(1, 5, func(i int) error {
		order = append(order, i) // would race if not inline
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
}
