// Package par provides the bounded worker pool behind every parallel
// evaluation path in the repository (GA fitness, resonance sweeps, V_MIN
// shmoos). Work items are indexed and results are collected by index, and
// on failure the error reported is the one from the lowest failing index —
// so a caller observes the same outcome at any worker count, which is the
// contract the determinism regression tests enforce.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism setting: values <= 0 mean "one worker per
// available CPU".
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 1 runs inline). All items are attempted; if any fail, the
// error returned is the one from the lowest index, regardless of the order
// in which workers finished.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachWorker(workers, n, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach for callers that keep per-worker scratch (batch
// evaluation arenas): fn additionally receives the index of the worker slot
// running the item, in [0, min(workers, n)). Item-to-worker assignment is
// dynamic, so only scratch state may depend on the worker index — results
// must not, which the determinism suites pin by running batch paths at
// several worker counts.
func ForEachWorker(workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	w := workers
	if w > n {
		w = n
	}
	if w <= 1 {
		// Inline path. Unlike the pooled path this stops at the first
		// error, but since items are visited in index order the error
		// returned is still the lowest-index one.
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(worker, i)
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
