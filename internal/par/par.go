// Package par provides the bounded worker pool behind every parallel
// evaluation path in the repository (GA fitness, resonance sweeps, V_MIN
// shmoos). Work items are indexed and results are collected by index, and
// on failure the error reported is the one from the lowest failing index —
// so a caller observes the same outcome at any worker count, which is the
// contract the determinism regression tests enforce.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism setting: values <= 0 mean "one worker per
// available CPU".
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 1 runs inline). All items are attempted; if any fail, the
// error returned is the one from the lowest index, regardless of the order
// in which workers finished.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := workers
	if w > n {
		w = n
	}
	if w <= 1 {
		// Inline path. Unlike the pooled path this stops at the first
		// error, but since items are visited in index order the error
		// returned is still the lowest-index one.
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
