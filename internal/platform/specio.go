package platform

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/em"
	"repro/internal/isa"
	"repro/internal/pdn"
	"repro/internal/uarch"
)

// JSON persistence for domain specs, so custom platforms can be described
// in a file and handed to the CLI tools instead of being compiled in.
// The wire format names architectures and functional units symbolically.

type specJSON struct {
	Name              string      `json:"name"`
	Board             string      `json:"board"`
	ISA               string      `json:"isa"`
	PDN               jsonPDN     `json:"pdn"`
	Core              coreJSON    `json:"core"`
	TotalCores        int         `json:"total_cores"`
	MaxClockHz        float64     `json:"max_clock_hz"`
	ClockStepHz       float64     `json:"clock_step_hz"`
	VoltageVisibility string      `json:"voltage_visibility"`
	EMPath            jsonEMPath  `json:"em_path"`
	Failure           jsonFailure `json:"failure"`
	TechNode          int         `json:"tech_node_nm"`
	OS                string      `json:"os"`
}

// The electrical structs already have exported SI-unit fields and marshal
// directly.
type (
	jsonPDN     = pdn.Params
	jsonEMPath  = em.Path
	jsonFailure = FailureParams
)

type coreJSON struct {
	Name           string         `json:"name"`
	OutOfOrder     bool           `json:"out_of_order"`
	IssueWidth     int            `json:"issue_width"`
	WindowSize     int            `json:"window_size"`
	Units          map[string]int `json:"units"`
	ChargeScale    float64        `json:"charge_scale"`
	BaseCharge     float64        `json:"base_charge"`
	IdleSlotCharge float64        `json:"idle_slot_charge"`
	CurrentSlewTau float64        `json:"current_slew_tau"`
}

// SaveSpecJSON writes the spec as indented JSON.
func SaveSpecJSON(w io.Writer, s Spec) error {
	units := make(map[string]int, isa.NumUnits)
	for u, n := range s.Core.Units {
		units[isa.Unit(u).String()] = n
	}
	out := specJSON{
		Name:  s.Name,
		Board: s.Board,
		ISA:   s.ISA.String(),
		PDN:   s.PDN,
		Core: coreJSON{
			Name:           s.Core.Name,
			OutOfOrder:     s.Core.OutOfOrder,
			IssueWidth:     s.Core.IssueWidth,
			WindowSize:     s.Core.WindowSize,
			Units:          units,
			ChargeScale:    s.Core.ChargeScale,
			BaseCharge:     s.Core.BaseCharge,
			IdleSlotCharge: s.Core.IdleSlotCharge,
			CurrentSlewTau: s.Core.CurrentSlewTau,
		},
		TotalCores:        s.TotalCores,
		MaxClockHz:        s.MaxClockHz,
		ClockStepHz:       s.ClockStepHz,
		VoltageVisibility: s.VoltageVisibility,
		EMPath:            s.EMPath,
		Failure:           s.Failure,
		TechNode:          s.TechNode,
		OS:                s.OS,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("platform: encoding spec: %w", err)
	}
	return nil
}

// LoadSpecJSON parses a spec written by SaveSpecJSON (or by hand) and
// validates it by constructing a throwaway domain.
func LoadSpecJSON(r io.Reader) (Spec, error) {
	var in specJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return Spec{}, fmt.Errorf("platform: decoding spec: %w", err)
	}
	arch, err := isa.ParseArch(in.ISA)
	if err != nil {
		return Spec{}, err
	}
	var units [isa.NumUnits]int
	for name, n := range in.Core.Units {
		u, err := isa.ParseUnit(name)
		if err != nil {
			return Spec{}, err
		}
		units[u] = n
	}
	s := Spec{
		Name:  in.Name,
		Board: in.Board,
		ISA:   arch,
		PDN:   in.PDN,
		Core: uarch.Config{
			Name:           in.Core.Name,
			OutOfOrder:     in.Core.OutOfOrder,
			IssueWidth:     in.Core.IssueWidth,
			WindowSize:     in.Core.WindowSize,
			Units:          units,
			ChargeScale:    in.Core.ChargeScale,
			BaseCharge:     in.Core.BaseCharge,
			IdleSlotCharge: in.Core.IdleSlotCharge,
			CurrentSlewTau: in.Core.CurrentSlewTau,
		},
		TotalCores:        in.TotalCores,
		MaxClockHz:        in.MaxClockHz,
		ClockStepHz:       in.ClockStepHz,
		VoltageVisibility: in.VoltageVisibility,
		EMPath:            in.EMPath,
		Failure:           in.Failure,
		TechNode:          in.TechNode,
		OS:                in.OS,
	}
	if _, err := NewDomain(s); err != nil {
		return Spec{}, fmt.Errorf("platform: loaded spec invalid: %w", err)
	}
	return s, nil
}
