package platform

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/em"
	"repro/internal/isa"
	"repro/internal/pdn"
	"repro/internal/uarch"
)

// JSON persistence for domain specs, so custom platforms can be described
// in a file and handed to the CLI tools instead of being compiled in.
// The wire format names architectures and functional units symbolically.
//
// Two schema versions exist. A v1 file (no "spec_version" key) is one
// domain spec — today's format, kept readable forever. A v2 file groups a
// whole platform: antenna, optional data-defined architectures, optional
// named PDNs shared by several domains, and the domain list (see
// specv2.go). Decoding is strict at every version: unknown or misspelled
// fields, unknown ISA/unit names and out-of-range electrical values are
// errors carrying a field path, never silent zeroes.

type specJSON struct {
	Name              string      `json:"name"`
	Board             string      `json:"board"`
	ISA               string      `json:"isa"`
	PDN               jsonPDN     `json:"pdn"`
	Core              coreJSON    `json:"core"`
	TotalCores        int         `json:"total_cores"`
	MaxClockHz        float64     `json:"max_clock_hz"`
	ClockStepHz       float64     `json:"clock_step_hz"`
	VoltageVisibility string      `json:"voltage_visibility"`
	EMPath            jsonEMPath  `json:"em_path"`
	Failure           jsonFailure `json:"failure"`
	TechNode          int         `json:"tech_node_nm"`
	OS                string      `json:"os"`
}

// The electrical structs already have exported SI-unit fields and marshal
// directly.
type (
	jsonPDN     = pdn.Params
	jsonEMPath  = em.Path
	jsonFailure = FailureParams
)

type coreJSON struct {
	Name           string         `json:"name"`
	OutOfOrder     bool           `json:"out_of_order"`
	IssueWidth     int            `json:"issue_width"`
	WindowSize     int            `json:"window_size"`
	Units          map[string]int `json:"units"`
	ChargeScale    float64        `json:"charge_scale"`
	BaseCharge     float64        `json:"base_charge"`
	IdleSlotCharge float64        `json:"idle_slot_charge"`
	CurrentSlewTau float64        `json:"current_slew_tau"`
}

// decodeStrict unmarshals data into v, rejecting unknown fields and
// trailing garbage; errors are prefixed with the field path so a typo in
// a nested section is reported as "domains[1].core: ..." rather than as
// an anonymous decoding failure.
func decodeStrict(data []byte, v any, path string) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("platform: %s: %w", path, err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return fmt.Errorf("platform: %s: trailing data after JSON value", path)
	}
	return nil
}

// coreToJSON converts a core config to its wire form (units by name).
func coreToJSON(c uarch.Config) coreJSON {
	units := make(map[string]int, isa.NumUnits)
	for u, n := range c.Units {
		units[isa.Unit(u).String()] = n
	}
	return coreJSON{
		Name:           c.Name,
		OutOfOrder:     c.OutOfOrder,
		IssueWidth:     c.IssueWidth,
		WindowSize:     c.WindowSize,
		Units:          units,
		ChargeScale:    c.ChargeScale,
		BaseCharge:     c.BaseCharge,
		IdleSlotCharge: c.IdleSlotCharge,
		CurrentSlewTau: c.CurrentSlewTau,
	}
}

// coreFromJSON converts the wire form back, rejecting unit-name typos
// with the offending key in the error.
func coreFromJSON(in coreJSON, path string) (uarch.Config, error) {
	var units [isa.NumUnits]int
	// Deterministic iteration so a file with two bad unit names always
	// reports the same one.
	names := make([]string, 0, len(in.Units))
	for name := range in.Units {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		u, err := isa.ParseUnit(name)
		if err != nil {
			return uarch.Config{}, fmt.Errorf("platform: %s.units: %w", path, err)
		}
		units[u] = in.Units[name]
	}
	return uarch.Config{
		Name:           in.Name,
		OutOfOrder:     in.OutOfOrder,
		IssueWidth:     in.IssueWidth,
		WindowSize:     in.WindowSize,
		Units:          units,
		ChargeScale:    in.ChargeScale,
		BaseCharge:     in.BaseCharge,
		IdleSlotCharge: in.IdleSlotCharge,
		CurrentSlewTau: in.CurrentSlewTau,
	}, nil
}

// specToJSON converts a domain Spec to its wire form.
func specToJSON(s Spec) specJSON {
	return specJSON{
		Name:              s.Name,
		Board:             s.Board,
		ISA:               s.ISA.String(),
		PDN:               s.PDN,
		Core:              coreToJSON(s.Core),
		TotalCores:        s.TotalCores,
		MaxClockHz:        s.MaxClockHz,
		ClockStepHz:       s.ClockStepHz,
		VoltageVisibility: s.VoltageVisibility,
		EMPath:            s.EMPath,
		Failure:           s.Failure,
		TechNode:          s.TechNode,
		OS:                s.OS,
	}
}

// specFromJSON converts the wire form back and validates it by
// constructing a throwaway domain, so out-of-range electrical values are
// rejected at load time with the domain's field path.
func specFromJSON(in specJSON, path string) (Spec, error) {
	arch, err := isa.ParseArch(in.ISA)
	if err != nil {
		return Spec{}, fmt.Errorf("platform: %s.isa: %w", path, err)
	}
	core, err := coreFromJSON(in.Core, path+".core")
	if err != nil {
		return Spec{}, err
	}
	s := Spec{
		Name:              in.Name,
		Board:             in.Board,
		ISA:               arch,
		PDN:               in.PDN,
		Core:              core,
		TotalCores:        in.TotalCores,
		MaxClockHz:        in.MaxClockHz,
		ClockStepHz:       in.ClockStepHz,
		VoltageVisibility: in.VoltageVisibility,
		EMPath:            in.EMPath,
		Failure:           in.Failure,
		TechNode:          in.TechNode,
		OS:                in.OS,
	}
	if _, err := NewDomain(s); err != nil {
		return Spec{}, fmt.Errorf("platform: %s: invalid spec: %w", path, err)
	}
	return s, nil
}

// SaveSpecJSON writes the spec as indented v1 JSON.
func SaveSpecJSON(w io.Writer, s Spec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(specToJSON(s)); err != nil {
		return fmt.Errorf("platform: encoding spec: %w", err)
	}
	return nil
}

// LoadSpecJSON parses a v1 spec written by SaveSpecJSON (or by hand).
// Unknown or misspelled fields are errors naming the offending key, and
// the spec is validated by constructing a throwaway domain.
func LoadSpecJSON(r io.Reader) (Spec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Spec{}, fmt.Errorf("platform: reading spec: %w", err)
	}
	return loadSpecV1(data)
}

func loadSpecV1(data []byte) (Spec, error) {
	var in specJSON
	if err := decodeStrict(data, &in, "spec"); err != nil {
		return Spec{}, err
	}
	return specFromJSON(in, "spec")
}
