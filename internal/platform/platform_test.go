package platform

import (
	"math"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/power"
	"repro/internal/workload"
)

func juno(t *testing.T) *Platform {
	t.Helper()
	p, err := JunoR2()
	if err != nil {
		t.Fatalf("JunoR2: %v", err)
	}
	return p
}

func amd(t *testing.T) *Platform {
	t.Helper()
	p, err := AMDDesktop()
	if err != nil {
		t.Fatalf("AMDDesktop: %v", err)
	}
	return p
}

func domain(t *testing.T, p *Platform, name string) *Domain {
	t.Helper()
	d, err := p.Domain(name)
	if err != nil {
		t.Fatalf("Domain(%s): %v", name, err)
	}
	return d
}

// probeLoop is the Section 5.3 two-phase loop: a burst of adds then a
// divide.
func probeLoop(t *testing.T, pool *isa.Pool) []isa.Inst {
	t.Helper()
	add, ok := pool.DefByMnemonic("add")
	if !ok {
		t.Fatal("pool has no add")
	}
	divM := "sdiv"
	if pool.Arch == isa.X86 {
		divM = "idiv"
	}
	div, ok := pool.DefByMnemonic(divM)
	if !ok {
		t.Fatalf("pool has no %s", divM)
	}
	var seq []isa.Inst
	for i := 0; i < 8; i++ {
		seq = append(seq, isa.Inst{Def: add, Dest: i + 1})
	}
	seq = append(seq, isa.Inst{Def: div, Dest: 13, Srcs: [2]int{13, 13}})
	return seq
}

func TestBuiltinPlatforms(t *testing.T) {
	j := juno(t)
	if len(j.Domains()) != 2 {
		t.Fatalf("juno has %d domains", len(j.Domains()))
	}
	a72 := domain(t, j, DomainA72)
	if a72.Spec.TotalCores != 2 || a72.Spec.VoltageVisibility != "oc-dso" {
		t.Errorf("a72 spec wrong: %+v", a72.Spec)
	}
	a53 := domain(t, j, DomainA53)
	if a53.Spec.TotalCores != 4 || a53.Spec.VoltageVisibility != "none" {
		t.Errorf("a53 spec wrong: %+v", a53.Spec)
	}
	a := amd(t)
	ath := domain(t, a, DomainAthlon)
	if ath.Spec.TotalCores != 4 || ath.Spec.ISA != isa.X86 {
		t.Errorf("athlon spec wrong: %+v", ath.Spec)
	}
	if _, err := j.Domain("nope"); err == nil {
		t.Error("unknown domain lookup succeeded")
	}
}

func TestCalibratedResonances(t *testing.T) {
	cases := []struct {
		plat, dom     string
		cores         int
		target, tolMH float64
	}{
		{"juno", DomainA72, 2, 67e6, 2e6},
		{"juno", DomainA72, 1, 85e6, 3e6},
		{"juno", DomainA53, 4, 76.5e6, 2e6},
		{"juno", DomainA53, 1, 96e6, 3e6},
		{"amd", DomainAthlon, 4, 78e6, 2e6},
	}
	plats := map[string]*Platform{"juno": juno(t), "amd": amd(t)}
	for _, tc := range cases {
		d := domain(t, plats[tc.plat], tc.dom)
		if err := d.SetPoweredCores(tc.cores); err != nil {
			t.Fatalf("SetPoweredCores: %v", err)
		}
		m, err := d.Model()
		if err != nil {
			t.Fatalf("Model: %v", err)
		}
		f, _, err := m.ResonancePeak(20e6, 300e6)
		if err != nil {
			t.Fatalf("ResonancePeak: %v", err)
		}
		if math.Abs(f-tc.target) > tc.tolMH {
			t.Errorf("%s/%d cores: peak %.2f MHz, want %.1f±%.1f MHz",
				tc.dom, tc.cores, f/1e6, tc.target/1e6, tc.tolMH/1e6)
		}
		d.Reset()
	}
}

func TestDomainStateControls(t *testing.T) {
	d := domain(t, juno(t), DomainA53)
	if err := d.SetPoweredCores(0); err == nil {
		t.Error("0 powered cores accepted")
	}
	if err := d.SetPoweredCores(5); err == nil {
		t.Error("5 powered cores accepted")
	}
	if err := d.SetPoweredCores(2); err != nil {
		t.Errorf("SetPoweredCores(2): %v", err)
	}
	if d.PoweredCores() != 2 {
		t.Errorf("PoweredCores = %d", d.PoweredCores())
	}
	if err := d.SetClockHz(0); err == nil {
		t.Error("clock 0 accepted")
	}
	if err := d.SetClockHz(2e9); err == nil {
		t.Error("clock above max accepted")
	}
	if err := d.SetClockHz(510e6); err != nil {
		t.Errorf("SetClockHz: %v", err)
	}
	// Snapped to the 25 MHz grid.
	if got := d.ClockHz(); math.Abs(got-500e6) > 1 {
		t.Errorf("clock snapped to %v, want 500 MHz", got)
	}
	if err := d.SetSupplyVolts(0); err == nil {
		t.Error("supply 0 accepted")
	}
	if err := d.SetSupplyVolts(5); err == nil {
		t.Error("supply 5V accepted")
	}
	if err := d.SetSupplyVolts(0.9); err != nil {
		t.Errorf("SetSupplyVolts: %v", err)
	}
	d.Reset()
	if d.PoweredCores() != 4 || d.ClockHz() != d.Spec.MaxClockHz || d.SupplyVolts() != d.Spec.PDN.VNominal {
		t.Error("Reset did not restore nominal state")
	}
}

func TestClockSteps(t *testing.T) {
	d := domain(t, juno(t), DomainA72)
	steps := d.ClockSteps()
	if len(steps) != 60 { // 20 MHz .. 1.2 GHz in 20 MHz steps
		t.Fatalf("got %d clock steps", len(steps))
	}
	if math.Abs(steps[len(steps)-1]-1.2e9) > 1 {
		t.Fatalf("top step %v", steps[len(steps)-1])
	}
}

func TestLoadValidation(t *testing.T) {
	d := domain(t, juno(t), DomainA72)
	seq := probeLoop(t, d.Spec.Pool())
	if _, _, err := d.Current(Load{Seq: nil, ActiveCores: 1}, 1e-9, 64); err == nil {
		t.Error("empty workload accepted")
	}
	if _, _, err := d.Current(Load{Seq: seq, ActiveCores: 3}, 1e-9, 64); err == nil {
		t.Error("more active than powered cores accepted")
	}
}

func TestCurrentIncludesIdleCoresAndSupplyScaling(t *testing.T) {
	d := domain(t, juno(t), DomainA53)
	seq := probeLoop(t, d.Spec.Pool())
	one, _, err := d.Current(Load{Seq: seq, ActiveCores: 1}, 1e-9, 512)
	if err != nil {
		t.Fatal(err)
	}
	// Same single active core with fewer powered cores: less idle current.
	if err := d.SetPoweredCores(1); err != nil {
		t.Fatal(err)
	}
	alone, _, err := d.Current(Load{Seq: seq, ActiveCores: 1}, 1e-9, 512)
	if err != nil {
		t.Fatal(err)
	}
	idle := power.IdleCurrent(d.Spec.Core, d.ClockHz()) * 3
	diff := power.MeanCurrent(one) - power.MeanCurrent(alone)
	if math.Abs(diff-idle) > 0.02*idle {
		t.Errorf("idle-core current %v, want %v", diff, idle)
	}
	// Supply scaling: 10%% lower supply, 10%% lower current.
	d.Reset()
	if err := d.SetSupplyVolts(0.9); err != nil {
		t.Fatal(err)
	}
	scaled, _, err := d.Current(Load{Seq: seq, ActiveCores: 1}, 1e-9, 512)
	if err != nil {
		t.Fatal(err)
	}
	ratio := power.MeanCurrent(scaled) / power.MeanCurrent(one)
	if math.Abs(ratio-0.9) > 0.01 {
		t.Errorf("supply scaling ratio %v, want 0.9", ratio)
	}
	d.Reset()
}

func TestSteadyResponseDroops(t *testing.T) {
	d := domain(t, juno(t), DomainA72)
	seq := probeLoop(t, d.Spec.Pool())
	resp, res, err := d.SteadyResponse(Load{Seq: seq, ActiveCores: 2}, 0.25e-9, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Error("IPC missing")
	}
	droop := resp.MaxDroop(d.SupplyVolts())
	if droop <= 0 || droop > 0.5 {
		t.Errorf("droop %v out of plausible range", droop)
	}
}

func TestSpectraDominantInBand(t *testing.T) {
	// The probe loop at full clock puts energy into 50-200 MHz; the
	// spectra must show it.
	d := domain(t, juno(t), DomainA72)
	seq := probeLoop(t, d.Spec.Pool())
	freqs, vAmp, iAmp, _, err := d.Spectra(Load{Seq: seq, ActiveCores: 2}, 0.25e-9, 8192)
	if err != nil {
		t.Fatal(err)
	}
	var inBand float64
	for i, f := range freqs {
		if f >= 20e6 && f <= 300e6 && vAmp[i] > inBand {
			inBand = vAmp[i]
		}
	}
	if inBand < 1e-4 {
		t.Errorf("no in-band voltage spectral content: max %v", inBand)
	}
	if len(iAmp) != len(vAmp) {
		t.Error("spectra length mismatch")
	}
}

func TestTransientMatchesSteadyStatePeakToPeak(t *testing.T) {
	// lbm puts strong spectral content inside the resonance band, where
	// the fast frequency-domain path must agree with the reference
	// transient solver.
	d := domain(t, juno(t), DomainA72)
	w, err := workload.ByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w.Build(d.Spec.Pool())
	if err != nil {
		t.Fatal(err)
	}
	l := Load{Seq: seq, ActiveCores: 2}
	const (
		dt = 0.25e-9
		n  = 8192
	)
	ss, _, err := d.SteadyResponse(l, dt, n)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := d.TransientResponse(l, dt, n)
	if err != nil {
		t.Fatal(err)
	}
	// Compare steady-state swing over the tail of the transient.
	tail := tr.VDie[n/2:]
	min, max := tail[0], tail[0]
	for _, v := range tail {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	trPtp := max - min
	ssPtp := ss.PeakToPeak()
	if math.Abs(trPtp-ssPtp) > 0.1*ssPtp {
		t.Errorf("transient p2p %v vs steady-state p2p %v", trPtp, ssPtp)
	}
}

func TestTransferCaching(t *testing.T) {
	d := domain(t, juno(t), DomainA72)
	ts1, err := d.transferSet(256, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	ts2, err := d.transferSet(256, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if ts1 != ts2 {
		t.Error("transfer set not cached")
	}
	if err := d.SetPoweredCores(1); err != nil {
		t.Fatal(err)
	}
	ts3, err := d.transferSet(256, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if ts3 == ts1 {
		t.Error("cache ignored powered-core change")
	}
	d.Reset()
}

func TestVminStepVolts(t *testing.T) {
	if got := domain(t, juno(t), DomainA72).Spec.VminStepVolts(); got != 0.010 {
		t.Errorf("ARM step %v", got)
	}
	if got := domain(t, amd(t), DomainAthlon).Spec.VminStepVolts(); got != 0.0125 {
		t.Errorf("AMD step %v", got)
	}
}

func TestNewPlatformErrors(t *testing.T) {
	if _, err := NewPlatform("x", juno(t).Antenna); err == nil {
		t.Error("no-domain platform accepted")
	}
	spec := Spec{Name: "dup"}
	if _, err := NewPlatform("x", juno(t).Antenna, spec); err == nil {
		t.Error("invalid spec accepted")
	}
	j := juno(t)
	a72 := domain(t, j, DomainA72).Spec
	if _, err := NewPlatform("x", j.Antenna, a72, a72); err == nil {
		t.Error("duplicate domain accepted")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	orig := domain(t, juno(t), DomainA72).Spec
	var buf strings.Builder
	if err := SaveSpecJSON(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSpecJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || back.ISA != orig.ISA || back.TotalCores != orig.TotalCores {
		t.Fatalf("identity lost: %+v", back)
	}
	if back.PDN != orig.PDN {
		t.Fatalf("PDN lost:\n%+v\n%+v", back.PDN, orig.PDN)
	}
	if back.Core != orig.Core {
		t.Fatalf("core lost:\n%+v\n%+v", back.Core, orig.Core)
	}
	if back.EMPath != orig.EMPath || back.Failure != orig.Failure {
		t.Fatal("EM path or failure params lost")
	}
	// The loaded spec builds a working platform.
	if _, err := NewPlatform("loaded", juno(t).Antenna, back); err != nil {
		t.Fatal(err)
	}
}

func TestLoadSpecJSONErrors(t *testing.T) {
	cases := []string{
		"{bad json",
		`{"isa": "mips"}`,
		`{"isa": "arm64", "core": {"units": {"warp": 1}}}`,
		`{"isa": "arm64", "name": "x"}`, // missing everything else: invalid domain
	}
	for i, text := range cases {
		if _, err := LoadSpecJSON(strings.NewReader(text)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
