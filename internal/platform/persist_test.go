package platform

import (
	"math"
	"testing"

	"repro/internal/castore"
	"repro/internal/uarch"
)

func openStoreT(t *testing.T) *castore.Store {
	t.Helper()
	s, err := castore.Open(t.TempDir(), castore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// withSpectraStore installs the disk tier (platform and uarch together, as
// the CLI does) around fn and restores the previous stores.
func withSpectraStore(t *testing.T, s *castore.Store, fn func()) {
	t.Helper()
	prevP := SetPersistentStore(s)
	prevU := uarch.SetPersistentStore(s)
	uarch.ResetTraceCache()
	defer func() {
		SetPersistentStore(prevP)
		uarch.SetPersistentStore(prevU)
		uarch.ResetTraceCache()
	}()
	fn()
}

func sameFloats(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d]: %v != %v", label, i, got[i], want[i])
		}
	}
}

// TestSpectraDiskWarmBitIdentical: a second domain instance with an empty
// in-memory memo, sharing one store, must serve spectra from disk and
// return bit-identical rows and simulation results.
func TestSpectraDiskWarmBitIdentical(t *testing.T) {
	const dt, n = 0.25e-9, 4096
	load := Load{Seq: probeLoop(t, domain(t, juno(t), DomainA72).Spec.Pool()), ActiveCores: 2}

	// Baseline without any store.
	dCold := domain(t, juno(t), DomainA72)
	wantF, wantV, wantI, wantRes, err := dCold.Spectra(load, dt, n)
	if err != nil {
		t.Fatal(err)
	}

	s := openStoreT(t)
	withSpectraStore(t, s, func() {
		d1 := domain(t, juno(t), DomainA72)
		if _, _, _, _, err := d1.Spectra(load, dt, n); err != nil {
			t.Fatal(err)
		}
	})
	if s.Stats().Puts == 0 {
		t.Fatal("first evaluation wrote nothing through")
	}

	var hitsAfterWarm uint64
	withSpectraStore(t, s, func() {
		d2 := domain(t, juno(t), DomainA72) // fresh in-memory memo
		gotF, gotV, gotI, gotRes, err := d2.Spectra(load, dt, n)
		if err != nil {
			t.Fatal(err)
		}
		sameFloats(t, "freqs", gotF, wantF)
		sameFloats(t, "vAmp", gotV, wantV)
		sameFloats(t, "iAmp", gotI, wantI)
		if gotRes == nil {
			t.Fatal("disk-warm spectra dropped the simulation result")
		}
		if gotRes.Warmup != wantRes.Warmup || gotRes.Iterations != wantRes.Iterations ||
			math.Float64bits(gotRes.LoopCycles) != math.Float64bits(wantRes.LoopCycles) ||
			math.Float64bits(gotRes.IPC) != math.Float64bits(wantRes.IPC) {
			t.Fatalf("disk-warm result differs: %+v != %+v", gotRes, wantRes)
		}
		sameFloats(t, "charge", gotRes.Charge, wantRes.Charge)
		if *gotRes.Config != *wantRes.Config {
			t.Error("disk-warm result config content differs")
		}
		hitsAfterWarm = s.Stats().Hits

		// The hit also fed the in-memory memo: a repeat must not re-read disk.
		if _, _, _, _, err := d2.Spectra(load, dt, n); err != nil {
			t.Fatal(err)
		}
		if got := s.Stats().Hits; got != hitsAfterWarm {
			t.Errorf("in-memory repeat re-read the store (%d -> %d hits)", hitsAfterWarm, got)
		}
	})
	if hitsAfterWarm == 0 {
		t.Fatal("second domain never hit the disk tier")
	}
}

// TestSpectraDiskKeySeparatesDomains: two different boards sharing one
// cache directory must never read each other's spectra — the disk key
// folds the full Spec content hash.
func TestSpectraDiskKeySeparatesDomains(t *testing.T) {
	dJuno := domain(t, juno(t), DomainA72)
	dAMD := domain(t, amd(t), DomainAthlon)
	if dJuno.SpecContentHash() == dAMD.SpecContentHash() {
		t.Fatal("distinct specs share a content hash")
	}
	kJuno := dJuno.spectraDiskKey(spectraKey{load: 1, powered: 2, clock: 1e9, supply: 0.9, dt: 0.25e-9, n: 4096})
	kAMD := dAMD.spectraDiskKey(spectraKey{load: 1, powered: 2, clock: 1e9, supply: 0.9, dt: 0.25e-9, n: 4096})
	if kJuno == kAMD {
		t.Fatal("identical operating points on different boards share a disk key")
	}

	// Same board built twice: hashes agree, so separate processes share.
	if got := domain(t, juno(t), DomainA72).SpecContentHash(); got != dJuno.SpecContentHash() {
		t.Fatal("same spec hashes differently across instances")
	}
}

// TestSpectraPayloadVerification: a payload placed under the wrong key
// must fail the identity echo and degrade to a recomputation.
func TestSpectraPayloadVerification(t *testing.T) {
	const dt, n = 0.25e-9, 2048
	d := domain(t, juno(t), DomainA72)
	load := Load{Seq: probeLoop(t, d.Spec.Pool()), ActiveCores: 2}

	s := openStoreT(t)
	withSpectraStore(t, s, func() {
		d1 := domain(t, juno(t), DomainA72)
		if _, _, _, _, err := d1.Spectra(load, dt, n); err != nil {
			t.Fatal(err)
		}

		// Graft the stored payload under a different clock's key.
		clock := d1.ClockHz()
		key := spectraKey{load: load.Hash(), powered: d1.PoweredCores(), clock: clock,
			supply: d1.SupplyVolts(), dt: dt, n: n}
		payload, ok := s.Get(spectraNS, spectraCodecVersion, d1.spectraDiskKey(key))
		if !ok {
			t.Fatal("stored spectra unreadable")
		}
		otherKey := key
		otherKey.clock = clock / 2
		if decodeSpectraEntry(payload, d1, otherKey) != nil {
			t.Fatal("payload decoded under a mismatched key")
		}
	})
}
