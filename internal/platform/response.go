package platform

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/pdn"
	"repro/internal/power"
	"repro/internal/uarch"
)

// Load is a stress workload bound to a domain: one instruction loop run in
// lockstep on ActiveCores cores. Powered-but-idle cores contribute their
// idle current; power-gated cores contribute nothing (and their absence
// also raises the PDN resonance via the die-capacitance model).
type Load struct {
	Seq         []isa.Inst
	ActiveCores int
	// PhaseCycles optionally staggers the active cores (empty = aligned).
	PhaseCycles []float64
}

// Validate reports the first problem with the load for this domain.
func (d *Domain) validateLoad(l Load) error {
	if len(l.Seq) == 0 {
		return fmt.Errorf("platform: %s: empty workload", d.Spec.Name)
	}
	if l.ActiveCores < 1 || l.ActiveCores > d.PoweredCores() {
		return fmt.Errorf("platform: %s: %d active cores with %d powered",
			d.Spec.Name, l.ActiveCores, d.PoweredCores())
	}
	return nil
}

// Current returns the total load current drawn from this domain's rail by
// the workload, sampled at dt over n points, plus the micro-architectural
// result for the loop. The current scales with the supply setting
// (dynamic charge is proportional to voltage).
func (d *Domain) Current(l Load, dt float64, n int) ([]float64, *uarch.Result, error) {
	if err := d.validateLoad(l); err != nil {
		return nil, nil, err
	}
	d.mu.Lock()
	clock, supply, powered := d.clockHz, d.supplyVolts, d.poweredCores
	d.mu.Unlock()

	cl := power.ClusterLoad{
		Core:        d.Spec.Core,
		Seq:         l.Seq,
		ClockHz:     clock,
		ActiveCores: l.ActiveCores,
		PhaseCycles: l.PhaseCycles,
	}
	wave, res, err := cl.Current(dt, n)
	if err != nil {
		return nil, nil, err
	}
	idle := power.IdleCurrent(d.Spec.Core, clock) * float64(powered-l.ActiveCores)
	scale := supply / d.Spec.PDN.VNominal
	for i := range wave {
		wave[i] = (wave[i] + idle) * scale
	}
	return wave, res, nil
}

// SteadyResponse returns the exact periodic steady-state die voltage and
// package-inductor current under the workload, using cached PDN transfers.
func (d *Domain) SteadyResponse(l Load, dt float64, n int) (*pdn.Response, *uarch.Result, error) {
	wave, res, err := d.Current(l, dt, n)
	if err != nil {
		return nil, nil, err
	}
	ts, err := d.transferSet(n, dt)
	if err != nil {
		return nil, nil, err
	}
	resp, err := ts.SteadyStateAt(wave, d.SupplyVolts())
	if err != nil {
		return nil, nil, err
	}
	return resp, res, nil
}

// Spectra returns the single-sided amplitude spectra of the die voltage
// and package-inductor current under the workload.
func (d *Domain) Spectra(l Load, dt float64, n int) (freqs, vAmp, iAmp []float64, res *uarch.Result, err error) {
	wave, res, err := d.Current(l, dt, n)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	ts, err := d.transferSet(n, dt)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	freqs, vAmp, iAmp, err = ts.Spectra(wave)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return freqs, vAmp, iAmp, res, nil
}

// TransientResponse integrates the PDN under the workload's current
// waveform with the full transient solver — the slower, reference path
// (the fast SteadyResponse path must agree with it; see the ablation
// benchmarks).
func (d *Domain) TransientResponse(l Load, dt float64, n int) (*pdn.Response, *uarch.Result, error) {
	wave, res, err := d.Current(l, dt, n)
	if err != nil {
		return nil, nil, err
	}
	m, err := d.Model()
	if err != nil {
		return nil, nil, err
	}
	sampled := func(t float64) float64 {
		idx := int(t / dt)
		if idx < 0 {
			idx = 0
		}
		if idx >= len(wave) {
			idx = len(wave) - 1
		}
		return wave[idx]
	}
	resp, err := m.Transient(sampled, dt, n-1)
	if err != nil {
		return nil, nil, err
	}
	return resp, res, nil
}
