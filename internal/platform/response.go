package platform

import (
	"fmt"

	"repro/internal/detrand"
	"repro/internal/dsp"
	"repro/internal/isa"
	"repro/internal/pdn"
	"repro/internal/power"
	"repro/internal/slab"
	"repro/internal/uarch"
)

// Load is a stress workload bound to a domain: one instruction loop run in
// lockstep on ActiveCores cores. Powered-but-idle cores contribute their
// idle current; power-gated cores contribute nothing (and their absence
// also raises the PDN resonance via the die-capacitance model).
type Load struct {
	Seq         []isa.Inst
	ActiveCores int
	// PhaseCycles optionally staggers the active cores (empty = aligned).
	PhaseCycles []float64
}

// Hash returns a content hash of the load (sequence, active cores, phase
// stagger) for spectra-cache keys and measurement-noise streams.
func (l Load) Hash() uint64 {
	h := detrand.NewHash()
	h.Int(len(l.Seq))
	for _, in := range l.Seq {
		h.String(in.Def.Mnemonic)
		h.Int(in.Dest)
		h.Int(in.Srcs[0])
		h.Int(in.Srcs[1])
		h.Int(in.Addr)
	}
	h.Int(l.ActiveCores)
	h.Floats(l.PhaseCycles)
	return h.Sum()
}

// Validate reports the first problem with the load for this domain.
func (d *Domain) validateLoad(l Load) error {
	if len(l.Seq) == 0 {
		return fmt.Errorf("platform: %s: empty workload", d.Spec.Name)
	}
	if l.ActiveCores < 1 || l.ActiveCores > d.PoweredCores() {
		return fmt.Errorf("platform: %s: %d active cores with %d powered",
			d.Spec.Name, l.ActiveCores, d.PoweredCores())
	}
	return nil
}

// Current returns the total load current drawn from this domain's rail by
// the workload, sampled at dt over n points, plus the micro-architectural
// result for the loop. The current scales with the supply setting
// (dynamic charge is proportional to voltage).
func (d *Domain) Current(l Load, dt float64, n int) ([]float64, *uarch.Result, error) {
	d.mu.Lock()
	clock, supply, powered := d.clockHz, d.supplyVolts, d.poweredCores
	d.mu.Unlock()
	return d.currentAt(l, dt, n, clock, supply, powered, nil, nil)
}

// currentAt is Current with the domain state passed explicitly, so
// concurrent sweeps can evaluate many operating points without mutating
// (or locking) the shared domain. With buf nil the returned waveform may
// come from the power wave pool and internal callers that consume it
// immediately hand it back via power.PutWave; a non-nil buf (a batch slab
// row of length n) is filled and returned instead, and must not be pooled.
func (d *Domain) currentAt(l Load, dt float64, n int, clock, supply float64, powered int, lin *uarch.Lineage, buf []float64) ([]float64, *uarch.Result, error) {
	if err := d.validateLoad(l); err != nil {
		return nil, nil, err
	}
	cl := d.clusterLoad(l, clock)
	var wave []float64
	var res *uarch.Result
	var err error
	if buf != nil {
		wave = buf
		res, err = cl.CurrentLineageInto(wave, dt, n, lin)
	} else {
		wave, res, err = cl.CurrentLineage(dt, n, lin)
	}
	if err != nil {
		return nil, nil, err
	}
	idle := power.IdleCurrent(d.Spec.Core, clock) * float64(powered-l.ActiveCores)
	scale := supply / d.Spec.PDN.VNominal
	for i := range wave {
		wave[i] = (wave[i] + idle) * scale
	}
	return wave, res, nil
}

// SteadyResponse returns the exact periodic steady-state die voltage and
// package-inductor current under the workload, using cached PDN transfers.
func (d *Domain) SteadyResponse(l Load, dt float64, n int) (*pdn.Response, *uarch.Result, error) {
	return d.SteadyResponseLineage(l, dt, n, nil)
}

// SteadyResponseLineage is SteadyResponse with an optional simulation
// lineage hint (see uarch.RunLineage); results are bit-identical for any
// hint value.
func (d *Domain) SteadyResponseLineage(l Load, dt float64, n int, lin *uarch.Lineage) (*pdn.Response, *uarch.Result, error) {
	d.mu.Lock()
	clock, supply, powered := d.clockHz, d.supplyVolts, d.poweredCores
	d.mu.Unlock()
	return d.steadyResponseAt(l, dt, n, clock, supply, powered, lin)
}

// SteadyResponseAt is SteadyResponse at an explicit clock and supply
// setting (the powered-core count still comes from the domain). The clock
// should be a value returned by SnapClock; no domain state is touched, so
// shmoos can evaluate a whole grid of operating points concurrently.
func (d *Domain) SteadyResponseAt(l Load, dt float64, n int, clockHz, supplyVolts float64) (*pdn.Response, *uarch.Result, error) {
	if supplyVolts <= 0 || supplyVolts > 2*d.Spec.PDN.VNominal {
		return nil, nil, fmt.Errorf("platform: %s: supply %v out of range", d.Spec.Name, supplyVolts)
	}
	return d.steadyResponseAt(l, dt, n, clockHz, supplyVolts, d.PoweredCores(), nil)
}

func (d *Domain) steadyResponseAt(l Load, dt float64, n int, clock, supply float64, powered int, lin *uarch.Lineage) (*pdn.Response, *uarch.Result, error) {
	wave, res, err := d.currentAt(l, dt, n, clock, supply, powered, lin, nil)
	if err != nil {
		return nil, nil, err
	}
	ts, err := d.transferSetAt(powered, supply, n, dt)
	if err != nil {
		return nil, nil, err
	}
	resp, err := ts.SteadyStateAt(wave, supply)
	power.PutWave(wave)
	if err != nil {
		return nil, nil, err
	}
	return resp, res, nil
}

// Spectra returns the single-sided amplitude spectra of the die voltage
// and package-inductor current under the workload. Results are memoized
// (see spectraKey); the returned slices are shared and must be treated as
// read-only.
func (d *Domain) Spectra(l Load, dt float64, n int) (freqs, vAmp, iAmp []float64, res *uarch.Result, err error) {
	return d.SpectraLineage(l, dt, n, nil)
}

// SpectraLineage is Spectra with an optional simulation lineage hint (see
// uarch.RunLineage); results are bit-identical for any hint value.
func (d *Domain) SpectraLineage(l Load, dt float64, n int, lin *uarch.Lineage) (freqs, vAmp, iAmp []float64, res *uarch.Result, err error) {
	return d.SpectraLineageArena(l, dt, n, lin, nil)
}

// SpectraLineageArena is SpectraLineage drawing its transient buffers (the
// current waveform, the half spectrum and the FFT scratch) from a caller's
// batch arena instead of the shared pools. The memoized outputs (vAmp, iAmp)
// are still allocated normally — they outlive the arena in the spectra
// cache. Results are bit-identical to SpectraLineage; a nil arena is the
// pooled path.
func (d *Domain) SpectraLineageArena(l Load, dt float64, n int, lin *uarch.Lineage, ar *slab.Arena) (freqs, vAmp, iAmp []float64, res *uarch.Result, err error) {
	d.mu.Lock()
	clock, supply, powered := d.clockHz, d.supplyVolts, d.poweredCores
	d.mu.Unlock()
	return d.spectraAt(l, dt, n, clock, supply, powered, lin, ar)
}

// SpectraAt is Spectra at an explicit clock (the supply and powered-core
// count still come from the domain). The clock should be a value returned
// by SnapClock; no domain state is touched, so resonance sweeps can
// evaluate every clock step concurrently.
func (d *Domain) SpectraAt(l Load, dt float64, n int, clockHz float64) (freqs, vAmp, iAmp []float64, res *uarch.Result, err error) {
	d.mu.Lock()
	supply, powered := d.supplyVolts, d.poweredCores
	d.mu.Unlock()
	return d.spectraAt(l, dt, n, clockHz, supply, powered, nil, nil)
}

func (d *Domain) spectraAt(l Load, dt float64, n int, clock, supply float64, powered int, lin *uarch.Lineage, ar *slab.Arena) (freqs, vAmp, iAmp []float64, res *uarch.Result, err error) {
	key := spectraKey{load: l.Hash(), powered: powered, clock: clock, supply: supply, dt: dt, n: n}
	d.spectraMu.Lock()
	if el, ok := d.spectra[key]; ok {
		d.spectraOrder.MoveToFront(el)
		ent := el.Value.(*spectraNode).ent
		d.spectraMu.Unlock()
		d.spectraHits.Add(1)
		return ent.freqs, ent.vAmp, ent.iAmp, ent.res, nil
	}
	d.spectraMu.Unlock()
	d.spectraMisses.Add(1)

	compute := func() (*spectraEntry, error) {
		var buf []float64
		if ar != nil {
			buf = ar.FloatsUninit(n) // fillCurrent overwrites (or clears) all n
		}
		wave, res, err := d.currentAt(l, dt, n, clock, supply, powered, lin, buf)
		if err != nil {
			return nil, err
		}
		ts, err := d.transferSetAt(powered, supply, n, dt)
		if err != nil {
			return nil, err
		}
		var freqs, vAmp, iAmp []float64
		if ar != nil {
			half := n/2 + 1
			vAmp = make([]float64, half)
			iAmp = make([]float64, half)
			// RFFTInto writes every element of both rows before any read.
			freqs, err = ts.SpectraInto(vAmp, iAmp, wave,
				ar.ComplexesUninit(half), ar.ComplexesUninit(dsp.RFFTScratchLen(n)))
		} else {
			freqs, vAmp, iAmp, err = ts.Spectra(wave)
			power.PutWave(wave)
		}
		if err != nil {
			return nil, err
		}
		return &spectraEntry{freqs: freqs, vAmp: vAmp, iAmp: iAmp, res: res}, nil
	}
	// The disk tier (when installed) serves the miss from a prior process's
	// work, collapses concurrent misses for this key onto one computation,
	// and writes fresh results through; the closure's arena belongs to this
	// worker only (waiters receive the encoded payload, never the closure).
	ent, err := d.spectraComputeOrDisk(key, compute)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	freqs, vAmp, iAmp, res = ent.freqs, ent.vAmp, ent.iAmp, ent.res
	d.spectraMu.Lock()
	if el, ok := d.spectra[key]; ok {
		// A concurrent miss computed the same pure result; keep the first.
		d.spectraOrder.MoveToFront(el)
	} else {
		d.spectra[key] = d.spectraOrder.PushFront(&spectraNode{key: key, ent: ent})
		d.evictSpectraLocked()
	}
	d.spectraMu.Unlock()
	return freqs, vAmp, iAmp, res, nil
}

// LoopHzAt returns the workload's loop fundamental frequency at an explicit
// (snapped) clock, sharing SpectraAt's exact simulation sizing so the
// underlying uarch result is the one a full spectra evaluation would carry.
// With the uarch trace cache warm this costs a cache lookup, letting sweeps
// band-filter clock steps before paying for resample + FFT + instruments.
func (d *Domain) LoopHzAt(l Load, dt float64, n int, clockHz float64) (float64, *uarch.Result, error) {
	if err := d.validateLoad(l); err != nil {
		return 0, nil, err
	}
	return d.clusterLoad(l, clockHz).LoopHz(dt, n)
}

// TransientResponse integrates the PDN under the workload's current
// waveform with the full transient solver — the slower, reference path
// (the fast SteadyResponse path must agree with it; see the ablation
// benchmarks).
func (d *Domain) TransientResponse(l Load, dt float64, n int) (*pdn.Response, *uarch.Result, error) {
	wave, res, err := d.Current(l, dt, n)
	if err != nil {
		return nil, nil, err
	}
	m, err := d.Model()
	if err != nil {
		return nil, nil, err
	}
	sampled := func(t float64) float64 {
		idx := int(t / dt)
		if idx < 0 {
			idx = 0
		}
		if idx >= len(wave) {
			idx = len(wave) - 1
		}
		return wave[idx]
	}
	resp, err := m.Transient(sampled, dt, n-1)
	power.PutWave(wave)
	if err != nil {
		return nil, nil, err
	}
	return resp, res, nil
}
