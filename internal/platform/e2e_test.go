package platform_test

// End-to-end coverage of the data-only platforms: the registry entries
// that exist purely as spec files (no Go constructor ever existed for
// them) must drive the full measurement stack — bench, backend, EM
// capture, resonance sweep, V_MIN — exactly like the converted builtins.

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/workload"
)

// runPlatform drives every domain of a built platform through an EM
// measurement, a fast resonance sweep and a short V_MIN campaign.
func runPlatform(t *testing.T, p *platform.Platform) {
	t.Helper()
	b, err := core.NewBench(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	b.Samples = 2
	be, err := backend.NewLocal(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range be.Domains() {
		caps, err := be.Caps(name)
		if err != nil {
			t.Fatal(err)
		}
		pool := caps.Pool()
		if pool == nil {
			t.Fatalf("%s: no instruction pool for arch %v", name, caps.Arch)
		}
		seq, err := workload.Probe().Build(pool)
		if err != nil {
			t.Fatal(err)
		}
		load := platform.Load{Seq: seq, ActiveCores: caps.TotalCores}
		m, err := be.EMMeasure(name, load)
		if err != nil {
			t.Fatalf("%s: EM measure: %v", name, err)
		}
		if m.PeakHz <= 0 {
			t.Errorf("%s: non-positive EM peak frequency %g", name, m.PeakHz)
		}
		sw, err := be.ResonanceSweep(name, caps.TotalCores, 1)
		if err != nil {
			t.Fatalf("%s: resonance sweep: %v", name, err)
		}
		if sw.ResonanceHz <= 0 {
			t.Errorf("%s: sweep found no resonant clock", name)
		}
		res, _, err := be.Vmin(name, load, 7, 2)
		if err != nil {
			t.Fatalf("%s: vmin: %v", name, err)
		}
		if res.VminV <= 0 {
			t.Errorf("%s: vmin %g not positive", name, res.VminV)
		}
	}
}

func TestRISCVInorderEndToEnd(t *testing.T) {
	p, err := platform.Build("riscv-inorder")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Domains()[0].Spec.ISA.String(); got != "riscv64" {
		t.Fatalf("riscv-inorder ISA = %q", got)
	}
	runPlatform(t, p)
}

func TestBigLittleEndToEnd(t *testing.T) {
	p, err := platform.Build("biglittle")
	if err != nil {
		t.Fatal(err)
	}
	doms := p.Domains()
	if len(doms) != 2 {
		t.Fatalf("biglittle has %d domains, want 2", len(doms))
	}
	// Both domains are fed from one shared rail: the spec carries a
	// single PDN referenced twice, and the build must preserve that.
	if doms[0].Spec.PDN != doms[1].Spec.PDN {
		t.Fatalf("big and little PDNs diverge:\n%+v\n%+v", doms[0].Spec.PDN, doms[1].Spec.PDN)
	}
	if doms[0].Spec.Core.OutOfOrder == doms[1].Spec.Core.OutOfOrder {
		t.Fatal("expected one OoO and one in-order domain")
	}
	runPlatform(t, p)
}

// TestResolveSpecFile: -platform accepts a spec file path, and a file
// containing a registry spec builds the same platform as the registry.
func TestResolveSpecFile(t *testing.T) {
	src, err := platform.Builtin().Source("riscv-inorder")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "board.json")
	if err := os.WriteFile(path, src, 0o644); err != nil {
		t.Fatal(err)
	}
	fromFile, err := platform.Resolve(path)
	if err != nil {
		t.Fatal(err)
	}
	fromReg, err := platform.Resolve("riscv-inorder")
	if err != nil {
		t.Fatal(err)
	}
	fd, rd := fromFile.Domains(), fromReg.Domains()
	if len(fd) != len(rd) {
		t.Fatalf("domain counts diverge: %d vs %d", len(fd), len(rd))
	}
	for i := range fd {
		if fd[i].SpecContentHash() != rd[i].SpecContentHash() {
			t.Fatalf("domain %s: file and registry builds have different cache identities", fd[i].Spec.Name)
		}
	}
}
