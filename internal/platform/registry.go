package platform

// The platform registry replaces the hard-wired board constructors: every
// built-in platform is a versioned spec file embedded at build time and
// loaded through the same strict decoder a user's -platform file goes
// through, so "built-in" means nothing more than "shipped in the binary".
// The chip matrix is data; adding a platform is a spec file, not a fork of
// this package (see DESIGN.md §17 and the README walkthrough).

import (
	"embed"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
)

//go:embed specs/*.json
var builtinSpecs embed.FS

// Registry holds named platform specs and builds fresh Platform instances
// from them (domains carry mutable operating-point state, so every Build
// returns an independent platform, exactly like the old constructors).
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*regEntry
	aliases map[string]string
}

type regEntry struct {
	src  []byte
	file *File
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		entries: make(map[string]*regEntry),
		aliases: make(map[string]string),
	}
}

// RegisterSpec parses, validates and stores a spec file, keyed by the
// platform name the file declares. The spec is proven constructible once
// at registration (including a throwaway domain build per entry), so
// Build can only fail for a name that was never registered.
func (r *Registry) RegisterSpec(src []byte) (string, error) {
	f, err := ParsePlatformSpec(src)
	if err != nil {
		return "", err
	}
	if _, err := f.Build(); err != nil {
		return "", err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[f.Name]; dup {
		return "", fmt.Errorf("platform: registry already has %q", f.Name)
	}
	if _, dup := r.aliases[f.Name]; dup {
		return "", fmt.Errorf("platform: registry name %q collides with an alias", f.Name)
	}
	src = append([]byte(nil), src...)
	r.entries[f.Name] = &regEntry{src: src, file: f}
	return f.Name, nil
}

// Alias makes alias resolve to an already-registered canonical name (the
// CLI's historical short names: juno, amd, gpu).
func (r *Registry) Alias(alias, canonical string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[canonical]; !ok {
		return fmt.Errorf("platform: alias %q targets unregistered %q", alias, canonical)
	}
	if _, dup := r.entries[alias]; dup {
		return fmt.Errorf("platform: alias %q collides with a registered platform", alias)
	}
	r.aliases[alias] = canonical
	return nil
}

// resolve maps a name or alias to its entry.
func (r *Registry) resolve(name string) (*regEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if canon, ok := r.aliases[name]; ok {
		name = canon
	}
	e, ok := r.entries[name]
	return e, ok
}

// Has reports whether name (or an alias of it) is registered.
func (r *Registry) Has(name string) bool {
	_, ok := r.resolve(name)
	return ok
}

// Names lists the canonical registered platform names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for name := range r.entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Source returns the spec file bytes a platform was registered from.
func (r *Registry) Source(name string) ([]byte, error) {
	e, ok := r.resolve(name)
	if !ok {
		return nil, fmt.Errorf("platform: registry has no %q", name)
	}
	return append([]byte(nil), e.src...), nil
}

// Spec returns the parsed spec file for a registered platform.
func (r *Registry) Spec(name string) (*File, error) {
	e, ok := r.resolve(name)
	if !ok {
		return nil, fmt.Errorf("platform: registry has no %q", name)
	}
	return e.file, nil
}

// Build constructs a fresh platform from a registered spec.
func (r *Registry) Build(name string) (*Platform, error) {
	e, ok := r.resolve(name)
	if !ok {
		return nil, fmt.Errorf("platform: registry has no %q (have %s)", name, strings.Join(r.Names(), ", "))
	}
	return e.file.Build()
}

var (
	builtinOnce sync.Once
	builtinReg  *Registry
	builtinErr  error
)

// Builtin returns the registry of embedded platform specs. The embedded
// files are compiled into the binary and validated here; a corrupt one is
// a build defect, so failure panics rather than limping on without the
// chip matrix.
func Builtin() *Registry {
	builtinOnce.Do(func() {
		r := NewRegistry()
		names, err := builtinSpecs.ReadDir("specs")
		if err != nil {
			builtinErr = err
			return
		}
		for _, de := range names {
			src, err := builtinSpecs.ReadFile("specs/" + de.Name())
			if err != nil {
				builtinErr = fmt.Errorf("embedded spec %s: %w", de.Name(), err)
				return
			}
			if _, err := r.RegisterSpec(src); err != nil {
				builtinErr = fmt.Errorf("embedded spec %s: %w", de.Name(), err)
				return
			}
		}
		for alias, canon := range map[string]string{
			"juno": "juno-r2",
			"amd":  "amd-desktop",
			"gpu":  "gpu-card",
		} {
			if err := r.Alias(alias, canon); err != nil {
				builtinErr = err
				return
			}
		}
		builtinReg = r
	})
	if builtinErr != nil {
		panic("platform: built-in spec registry invalid: " + builtinErr.Error())
	}
	return builtinReg
}

// Build constructs a fresh platform from the built-in registry.
func Build(name string) (*Platform, error) { return Builtin().Build(name) }

// BuiltinNames lists the built-in platforms.
func BuiltinNames() []string { return Builtin().Names() }

// Resolve builds a platform from a CLI -platform value: a registry name
// (or alias), or the path of a .json spec file of any supported schema
// version. Every entry point — the five commands, labtarget, the
// experiment suite — funnels through here, so "-platform X" means the
// same thing everywhere.
func Resolve(name string) (*Platform, error) {
	if Builtin().Has(name) {
		return Build(name)
	}
	if strings.HasSuffix(name, ".json") {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		p, err := LoadPlatformJSON(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		return p, nil
	}
	return nil, fmt.Errorf("unknown platform %q (want %s, or a .json spec file)",
		name, strings.Join(BuiltinNames(), ", "))
}

// Domain names on the built-in platforms.
const (
	DomainA72    = "cortex-a72"
	DomainA53    = "cortex-a53"
	DomainAthlon = "athlon-ii-x4"
)

// JunoR2 builds the ARM Juno R2 big.LITTLE platform of Table 1 from its
// embedded spec.
func JunoR2() (*Platform, error) { return Build("juno-r2") }

// AMDDesktop builds the Athlon II X4 645 desktop platform of Table 1 from
// its embedded spec.
func AMDDesktop() (*Platform, error) { return Build("amd-desktop") }

// GPUCard builds the discrete-GPU platform (one rail feeding eight SMs,
// no voltage visibility) from its embedded spec.
func GPUCard() (*Platform, error) { return Build("gpu-card") }
