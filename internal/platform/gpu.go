package platform

import (
	"repro/internal/isa"
	"repro/internal/uarch"
)

// The GPU platform extends the methodology toward the paper's first future
// work item ("extend our methodology to GPU PDNs", Section 10, citing
// EmerGPU and GPU voltage-noise studies). A discrete GPU is electrically a
// larger version of the same problem: many identical streaming
// multiprocessors (SMs) under one rail, lots of die capacitance, and
// lockstep SIMD execution that produces brutal current steps.
//
// The board itself (PDN, EM path, clocking) lives in the embedded spec
// file specs/gpu-card.json; only the SM core model remains in Go because
// it is exported API (emnoise.GPUSMCore).

// DomainGPU names the GPU card's voltage domain.
const DomainGPU = "gpu-smx"

// GPUSM returns a streaming-multiprocessor core model: in-order and narrow
// like a LITTLE core, but with doubled SIMD resources and a large
// per-operation charge (very wide datapaths switching in lockstep).
func GPUSM() uarch.Config {
	var units [isa.NumUnits]int
	units[isa.UnitALU] = 2
	units[isa.UnitMulDiv] = 1
	units[isa.UnitFP] = 2
	units[isa.UnitSIMD] = 2
	units[isa.UnitLS] = 1
	units[isa.UnitBranch] = 1
	return uarch.Config{
		Name:           "gpu-sm",
		OutOfOrder:     false,
		IssueWidth:     2,
		WindowSize:     12,
		Units:          units,
		ChargeScale:    1.4,
		BaseCharge:     0.20e-9,
		IdleSlotCharge: 0.02e-9,
		CurrentSlewTau: 1.5e-9,
	}
}
