package platform

import (
	"repro/internal/em"
	"repro/internal/isa"
	"repro/internal/pdn"
	"repro/internal/uarch"
)

// The GPU platform extends the methodology toward the paper's first future
// work item ("extend our methodology to GPU PDNs", Section 10, citing
// EmerGPU and GPU voltage-noise studies). A discrete GPU is electrically a
// larger version of the same problem: many identical streaming
// multiprocessors (SMs) under one rail, lots of die capacitance, and
// lockstep SIMD execution that produces brutal current steps.

// DomainGPU names the GPU card's voltage domain.
const DomainGPU = "gpu-smx"

// GPUSM returns a streaming-multiprocessor core model: in-order and narrow
// like a LITTLE core, but with doubled SIMD resources and a large
// per-operation charge (very wide datapaths switching in lockstep).
func GPUSM() uarch.Config {
	var units [isa.NumUnits]int
	units[isa.UnitALU] = 2
	units[isa.UnitMulDiv] = 1
	units[isa.UnitFP] = 2
	units[isa.UnitSIMD] = 2
	units[isa.UnitLS] = 1
	units[isa.UnitBranch] = 1
	return uarch.Config{
		Name:           "gpu-sm",
		OutOfOrder:     false,
		IssueWidth:     2,
		WindowSize:     12,
		Units:          units,
		ChargeScale:    1.4,
		BaseCharge:     0.20e-9,
		IdleSlotCharge: 0.02e-9,
		CurrentSlewTau: 1.5e-9,
	}
}

// gpuPDN is calibrated for a ~55 MHz first-order resonance with all eight
// SMs powered: a big die with lots of capacitance on a stiff package.
func gpuPDN() pdn.Params {
	return pdn.Params{
		Name:       "gpu-card",
		VNominal:   1.05,
		CDieCore:   15e-9,
		CDieUncore: 40e-9,
		RDie:       0.004,
		LPkg:       28.5e-12,
		RPkgTrace:  0.2e-3,
		CPkg:       6e-6,
		ESRPkg:     10e-3,
		ESLPkg:     20e-12,
		LPcb:       1.5e-9,
		RPcbTrace:  0.6e-3,
		CPcb:       800e-6,
		ESRPcb:     1.5e-3,
		ESLPcb:     1e-9,
		LVrm:       10e-9,
		RVrm:       0.3e-3,
	}
}

// GPUCard builds a discrete-GPU platform: one rail feeding eight SMs.
// The domain has no voltage visibility — exactly the situation where the
// EM methodology is the only practical option.
func GPUCard() (*Platform, error) {
	smx := Spec{
		Name:              DomainGPU,
		Board:             "discrete GPU card",
		ISA:               isa.ARM64, // SM ISA stands in via the generic pool
		PDN:               gpuPDN(),
		Core:              GPUSM(),
		TotalCores:        8,
		MaxClockHz:        1.1e9,
		ClockStepHz:       25e6,
		VoltageVisibility: "none",
		EMPath:            em.Path{DistanceM: 0.06, CouplingK: 1.5e-5, RefHz: 100e6, RefDistanceM: 0.07},
		Failure:           FailureParams{VCritAtMax: 0.80, SlackPerHz: 1.2e-10, SDCBand: 0.010},
		TechNode:          12,
		OS:                "driver-managed",
	}
	return NewPlatform("gpu-card", em.DefaultLoopAntenna(), smx)
}
