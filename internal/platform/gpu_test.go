package platform

import (
	"math"
	"testing"
)

func TestGPUCard(t *testing.T) {
	p, err := GPUCard()
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Domain(DomainGPU)
	if err != nil {
		t.Fatal(err)
	}
	if d.Spec.TotalCores != 8 {
		t.Fatalf("GPU has %d SMs", d.Spec.TotalCores)
	}
	if d.Spec.VoltageVisibility != "none" {
		t.Fatalf("GPU visibility %q — the EM method is the point", d.Spec.VoltageVisibility)
	}
	if err := GPUSM().Validate(); err != nil {
		t.Fatalf("GPU SM config: %v", err)
	}
}

func TestGPUResonanceCalibration(t *testing.T) {
	p, err := GPUCard()
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Domain(DomainGPU)
	if err != nil {
		t.Fatal(err)
	}
	m, err := d.Model()
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := m.ResonancePeak(20e6, 200e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-56e6) > 4e6 {
		t.Fatalf("GPU resonance %.1f MHz, want ~56", f/1e6)
	}
	// Gating SMs raises the resonance, as on the CPU clusters.
	if err := d.SetPoweredCores(2); err != nil {
		t.Fatal(err)
	}
	defer d.Reset()
	m2, err := d.Model()
	if err != nil {
		t.Fatal(err)
	}
	f2, _, err := m2.ResonancePeak(20e6, 200e6)
	if err != nil {
		t.Fatal(err)
	}
	if f2 <= f+10e6 {
		t.Fatalf("gating 6 of 8 SMs shifted only %v -> %v", f, f2)
	}
}

func TestGPUWorkloadRuns(t *testing.T) {
	p, err := GPUCard()
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Domain(DomainGPU)
	if err != nil {
		t.Fatal(err)
	}
	seq := probeLoop(t, d.Spec.Pool())
	resp, ur, err := d.SteadyResponse(Load{Seq: seq, ActiveCores: 8}, 0.25e-9, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if ur.IPC <= 0 {
		t.Fatal("no IPC")
	}
	if droop := resp.MaxDroop(d.Spec.PDN.VNominal); droop <= 0 || droop > 0.5 {
		t.Fatalf("GPU droop %v implausible", droop)
	}
}
