package platform

// Batched operating-point evaluation.
//
// A sweep, shmoo or V_MIN campaign holds the workload fixed and walks a
// grid of (clock, supply) operating points. Most of the per-point cost is
// clock-invariant (the cycle-domain simulation) or supply-invariant (the
// resampled base waveform, the PDN transfer set), so the campaign paths
// here hoist each invariant to the widest scope it holds at:
//
//   - PrimeTraceAt simulates the workload once, sized for the campaign's
//     largest clock; every point's sizing then synthesizes from the primed
//     history (uarch.Trace), bit-identically to per-point simulation.
//   - PreparePointAt sizes one point and carries the simulation, so the
//     loop-frequency band prefilter and the spectra evaluation of a sweep
//     point share it instead of sizing twice.
//   - LadderAt freezes one (load, clock) column of a V_MIN campaign:
//     the supply-invariant base waveform and transfer set are computed
//     once and each supply step pays only the scale + FFT remainder,
//     memoized per supply (the response is a pure function of the
//     operating point, so repeated trials of a Repeat campaign dedup).
//
// All transient rows live in caller-owned slab arenas (one per batch
// worker; see internal/slab lifetime rules) and are never installed in the
// domain's memo caches. Every path reproduces the scalar arithmetic
// operation for operation, which the platform/core/vmin property tests pin.

import (
	"fmt"

	"repro/internal/dsp"
	"repro/internal/pdn"
	"repro/internal/power"
	"repro/internal/slab"
	"repro/internal/uarch"
)

// clusterLoad is the power-layer view of a load at an explicit clock — the
// single construction point shared by the scalar and batched paths.
func (d *Domain) clusterLoad(l Load, clockHz float64) power.ClusterLoad {
	return power.ClusterLoad{
		Core:        d.Spec.Core,
		Seq:         l.Seq,
		ClockHz:     clockHz,
		ActiveCores: l.ActiveCores,
		PhaseCycles: l.PhaseCycles,
	}
}

// PrimeTraceAt simulates the load's clock-invariant trace once, sized for
// a campaign's largest (snapped) clock, and returns the handle every
// operating point of the campaign draws from (the simulator is purely
// cycle-domain, so lower clocks demand covered prefixes). Priming is an
// optimization only: any failure returns nil, and per-point evaluation
// then performs its own sizing and reproduces the scalar path's exact
// error.
func (d *Domain) PrimeTraceAt(l Load, dt float64, n int, maxClockHz float64) *uarch.Trace {
	if dt <= 0 || n < 1 || d.validateLoad(l) != nil {
		return nil
	}
	cl := d.clusterLoad(l, maxClockHz)
	if cl.Validate() != nil {
		return nil
	}
	tr, err := uarch.PrimeTrace(cl.Core, cl.Seq, cl.PrimeSteadyCycles(dt, n))
	if err != nil {
		return nil
	}
	return tr
}

// PointEval is one sized operating point of a batched campaign: the loop
// fundamental for band prefiltering plus the prepared simulation the
// spectra evaluation reuses, so an in-band point never sizes twice.
type PointEval struct {
	// LoopHz is the load's loop fundamental at this point's clock — the
	// value LoopHzAt reports, available before any spectra cost is paid.
	LoopHz float64

	d     *Domain
	load  Load
	hash  uint64
	clock float64
	sim   power.SteadySim
}

// PreparePointAt sizes one batched operating point at an explicit
// (snapped) clock, serving the simulation from tr when it covers the
// window (a nil trace falls back to per-point sizing). The underlying
// uarch result is the one a LoopHzAt or SpectraAt call would carry, so
// prefilter decisions and spectra stay bit-identical to the scalar path.
func (d *Domain) PreparePointAt(l Load, dt float64, n int, clockHz float64, tr *uarch.Trace) (PointEval, error) {
	if err := d.validateLoad(l); err != nil {
		return PointEval{}, err
	}
	sim, err := d.clusterLoad(l, clockHz).SteadySimTrace(dt, n, tr)
	if err != nil {
		return PointEval{}, err
	}
	return PointEval{
		LoopHz: power.LoopFrequency(sim.Res, clockHz),
		d:      d,
		load:   l,
		hash:   l.Hash(),
		clock:  clockHz,
		sim:    sim,
	}, nil
}

// SpectraArena evaluates the prepared point's spectra at an explicit
// (supply, powered) snapshot, drawing every transient row — including the
// amplitude outputs — from the caller's arena. A warm spectra-memo entry
// is still honoured (shared read-only slices), but an arena-computed
// result is NOT installed: its rows die at the arena's next Reset, and
// keeping a campaign's one-shot grid traffic out of the memo is what lets
// a converged GA population's elites stay resident. Results are
// bit-identical to SpectraAt at the same snapshot.
func (pe *PointEval) SpectraArena(supply float64, powered int, ar *slab.Arena) (freqs, vAmp, iAmp []float64, err error) {
	d := pe.d
	key := spectraKey{load: pe.hash, powered: powered, clock: pe.clock, supply: supply, dt: pe.sim.Dt, n: pe.sim.N}
	d.spectraMu.Lock()
	if el, ok := d.spectra[key]; ok {
		d.spectraOrder.MoveToFront(el)
		ent := el.Value.(*spectraNode).ent
		d.spectraMu.Unlock()
		d.spectraHits.Add(1)
		return ent.freqs, ent.vAmp, ent.iAmp, nil
	}
	d.spectraMu.Unlock()
	d.spectraMisses.Add(1)

	n := pe.sim.N
	wave := ar.FloatsUninit(n) // FillFromSim overwrites (or clears) all n
	cl := d.clusterLoad(pe.load, pe.clock)
	if err := cl.FillFromSim(pe.sim, wave); err != nil {
		return nil, nil, nil, err
	}
	idle := power.IdleCurrent(d.Spec.Core, pe.clock) * float64(powered-pe.load.ActiveCores)
	scale := supply / d.Spec.PDN.VNominal
	for i := range wave {
		wave[i] = (wave[i] + idle) * scale
	}
	ts, err := d.transferSetAt(powered, supply, n, pe.sim.Dt)
	if err != nil {
		return nil, nil, nil, err
	}
	half := n/2 + 1
	vAmp = ar.FloatsUninit(half) // the amplitude fold overwrites every bin
	iAmp = ar.FloatsUninit(half)
	freqs, err = ts.SpectraInto(vAmp, iAmp, wave,
		ar.ComplexesUninit(half), ar.ComplexesUninit(dsp.RFFTScratchLen(n)))
	if err != nil {
		return nil, nil, nil, err
	}
	return freqs, vAmp, iAmp, nil
}

// SpectraAtArena is SpectraAt with the transient buffers and amplitude
// outputs drawn from a caller's batch arena, optionally served from a
// primed clock-invariant trace. Results are bit-identical to SpectraAt;
// the returned slices follow the arena's lifetime rules unless they came
// from a memo hit (either way: treat as read-only, do not retain past the
// next Reset).
func (d *Domain) SpectraAtArena(l Load, dt float64, n int, clockHz float64, tr *uarch.Trace, ar *slab.Arena) (freqs, vAmp, iAmp []float64, err error) {
	d.mu.Lock()
	supply, powered := d.supplyVolts, d.poweredCores
	d.mu.Unlock()
	pe, err := d.PreparePointAt(l, dt, n, clockHz, tr)
	if err != nil {
		return nil, nil, nil, err
	}
	return pe.SpectraArena(supply, powered, ar)
}

// Ladder is the batched evaluator of one (load, clock) column of a V_MIN
// campaign. Everything supply-invariant is frozen at construction: the
// sized simulation, the resampled and slew-filtered base current waveform
// (idle lift and supply scaling apply after the slew filter, exactly as in
// the scalar path), and the PDN transfer set. Each supply step then pays
// only the scale + FFT + inverse-FFT remainder, streamed through the
// owning arena's rows, and the (minV, droop) outcome is memoized per
// supply — the response is a pure function of (load, clock, supply,
// powered), so the repeated descents of a Repeat campaign and the shared
// nominal trial dedup to one evaluation. Responses are bit-identical to
// SteadyResponseAt at the same point.
//
// A Ladder is not safe for concurrent use; batch paths keep one per
// worker. Its rows live in the construction arena and die at that arena's
// next Reset.
type Ladder struct {
	d       *Domain
	clock   float64
	powered int
	idle    float64
	dt      float64
	n       int
	ts      *pdn.TransferSet
	base    []float64 // post-slew cluster current, before idle lift / supply scale
	wave    []float64
	vdie    []float64
	idie    []float64
	spec    []complex128
	prod    []complex128
	scratch []complex128
	memo    map[float64]ladderPoint
}

type ladderPoint struct {
	minV, droop float64
}

// LadderAt prepares the supply-invariant parts of one V_MIN column at an
// explicit (snapped) clock, serving the simulation from tr when it covers
// the window (nil falls back to per-point sizing). The powered-core count
// snapshots the domain, matching SteadyResponseAt's contract.
func (d *Domain) LadderAt(l Load, dt float64, n int, clockHz float64, tr *uarch.Trace, ar *slab.Arena) (*Ladder, error) {
	if err := d.validateLoad(l); err != nil {
		return nil, err
	}
	powered := d.PoweredCores()
	cl := d.clusterLoad(l, clockHz)
	sim, err := cl.SteadySimTrace(dt, n, tr)
	if err != nil {
		return nil, err
	}
	// The transfer set is supply-independent (the network is linear); the
	// nominal supply here only seeds a cache miss's model build.
	ts, err := d.transferSetAt(powered, d.Spec.PDN.VNominal, n, dt)
	if err != nil {
		return nil, err
	}
	base := ar.FloatsUninit(n)
	if err := cl.FillFromSim(sim, base); err != nil {
		return nil, err
	}
	half := n/2 + 1
	return &Ladder{
		d:       d,
		clock:   clockHz,
		powered: powered,
		idle:    power.IdleCurrent(d.Spec.Core, clockHz) * float64(powered-l.ActiveCores),
		dt:      dt,
		n:       n,
		ts:      ts,
		base:    base,
		wave:    ar.FloatsUninit(n),
		vdie:    ar.FloatsUninit(n),
		idie:    ar.FloatsUninit(n),
		spec:    ar.ComplexesUninit(half),
		prod:    ar.ComplexesUninit(half),
		scratch: ar.ComplexesUninit(dsp.RFFTScratchLen(n)),
		memo:    make(map[float64]ladderPoint),
	}, nil
}

// MinVDroop evaluates the column at one supply: the response's minimum die
// voltage and its worst droop below the supply — the two scalars the V_MIN
// failure model consumes. Values are bit-identical to running
// SteadyResponseAt and reading MinVoltage/MaxDroop off the response.
func (ld *Ladder) MinVDroop(supply float64) (minV, droopV float64, err error) {
	if p, ok := ld.memo[supply]; ok {
		return p.minV, p.droop, nil
	}
	d := ld.d
	if supply <= 0 || supply > 2*d.Spec.PDN.VNominal {
		return 0, 0, fmt.Errorf("platform: %s: supply %v out of range", d.Spec.Name, supply)
	}
	scale := supply / d.Spec.PDN.VNominal
	for i, v := range ld.base {
		ld.wave[i] = (v + ld.idle) * scale
	}
	if err := ld.ts.SteadyStateInto(ld.vdie, ld.idie, ld.wave, supply, ld.spec, ld.prod, ld.scratch); err != nil {
		return 0, 0, err
	}
	resp := pdn.Response{Dt: ld.dt, VDie: ld.vdie, IDie: ld.idie}
	minV = resp.MinVoltage()
	droopV = resp.MaxDroop(supply)
	ld.memo[supply] = ladderPoint{minV: minV, droop: droopV}
	return minV, droopV, nil
}
