package platform

// Schema v2: one file describes a whole platform rather than one domain.
//
//	{
//	  "spec_version": 2,
//	  "name": "juno-r2",
//	  "antenna": {"self_resonance_hz": 2.95e9, "q": 8, ...},
//	  "archs":  {"riscv64": {"int_regs": 31, ..., "instructions": [...]}},
//	  "pdns":   {"shared-rail": {"name": "biglittle", "v_nominal": 1.0, ...}},
//	  "domains": [
//	    {"name": "big", "isa": "arm64", "pdn_ref": "shared-rail", ...},
//	    {"name": "little", "isa": "arm64", "pdn_ref": "shared-rail", ...}
//	  ]
//	}
//
// What v2 adds over v1:
//
//   - antenna/platform grouping: the receiver antenna and the platform name
//     live in the file, so a multi-domain board is one artifact;
//   - symbolic ISA references ("isa": "arm64") or data-defined
//     architectures (an "archs" entry registers the name and its
//     instruction pool via isa.DefineArchJSON — a new ISA is a table, not
//     a Go fork);
//   - named PDNs: several domains may reference one electrical network
//     through "pdn_ref" (the big.LITTLE shared-rail scenario) instead of
//     duplicating — and possibly fork-editing — the parameter block.
//
// Decoding is strict throughout, and every error carries the field path of
// the offending section ("domains[1].core.units: unknown functional unit
// "sind"").

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"sort"

	"repro/internal/em"
	"repro/internal/isa"
	"repro/internal/pdn"
)

// SpecVersion is the current (newest writable) schema version.
const SpecVersion = 2

type fileJSON struct {
	SpecVersion int                        `json:"spec_version"`
	Name        string                     `json:"name"`
	Antenna     em.Antenna                 `json:"antenna"`
	Archs       map[string]json.RawMessage `json:"archs,omitempty"`
	PDNs        map[string]pdn.Params      `json:"pdns,omitempty"`
	Domains     []json.RawMessage          `json:"domains"`
}

// domainJSON is specJSON plus the v2-only PDN reference; exactly one of
// "pdn" and "pdn_ref" must be present.
type domainJSON struct {
	Name              string      `json:"name"`
	Board             string      `json:"board"`
	ISA               string      `json:"isa"`
	PDN               *jsonPDN    `json:"pdn,omitempty"`
	PDNRef            string      `json:"pdn_ref,omitempty"`
	Core              coreJSON    `json:"core"`
	TotalCores        int         `json:"total_cores"`
	MaxClockHz        float64     `json:"max_clock_hz"`
	ClockStepHz       float64     `json:"clock_step_hz"`
	VoltageVisibility string      `json:"voltage_visibility"`
	EMPath            jsonEMPath  `json:"em_path"`
	Failure           jsonFailure `json:"failure"`
	TechNode          int         `json:"tech_node_nm"`
	OS                string      `json:"os"`
}

// File is a parsed, fully validated platform spec: every arch reference
// resolved (data-defined ones registered), every PDN reference expanded,
// every domain spec constructible.
type File struct {
	Name    string
	Antenna em.Antenna
	Specs   []Spec
}

// Build assembles a fresh Platform (domains carry mutable operating-point
// state, so every call returns an independent instance).
func (f *File) Build() (*Platform, error) {
	return NewPlatform(f.Name, f.Antenna, f.Specs...)
}

// sniffVersion reads the schema version without committing to a shape:
// a missing "spec_version" key is version 1 (the original single-domain
// format predates versioning).
func sniffVersion(data []byte) (int, error) {
	var probe struct {
		SpecVersion *int `json:"spec_version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return 0, fmt.Errorf("platform: decoding spec: %w", err)
	}
	if probe.SpecVersion == nil {
		return 1, nil
	}
	return *probe.SpecVersion, nil
}

// ParsePlatformSpec parses and validates a spec file of any supported
// schema version into a File. Data-defined architectures in a v2 "archs"
// section are registered process-wide (idempotently) as a side effect, so
// the resulting Specs' instruction pools resolve through isa.PoolFor like
// any built-in.
func ParsePlatformSpec(data []byte) (*File, error) {
	ver, err := sniffVersion(data)
	if err != nil {
		return nil, err
	}
	switch ver {
	case 1:
		spec, err := loadSpecV1(data)
		if err != nil {
			return nil, err
		}
		return &File{Name: spec.Name, Antenna: em.DefaultLoopAntenna(), Specs: []Spec{spec}}, nil
	case 2:
		return parseFileV2(data)
	default:
		return nil, fmt.Errorf("platform: unsupported spec_version %d (this build reads versions 1 and 2)", ver)
	}
}

func parseFileV2(data []byte) (*File, error) {
	var in fileJSON
	if err := decodeStrict(data, &in, "spec"); err != nil {
		return nil, err
	}
	if in.Name == "" {
		return nil, fmt.Errorf("platform: spec.name: empty platform name")
	}
	if err := in.Antenna.Validate(); err != nil {
		return nil, fmt.Errorf("platform: spec.antenna: %w", err)
	}
	if len(in.Domains) == 0 {
		return nil, fmt.Errorf("platform: spec.domains: platform %s declares no domains", in.Name)
	}

	// Register data-defined architectures first (sorted for deterministic
	// error attribution) so domain "isa" references resolve.
	archNames := make([]string, 0, len(in.Archs))
	for name := range in.Archs {
		archNames = append(archNames, name)
	}
	sort.Strings(archNames)
	for _, name := range archNames {
		if _, err := isa.DefineArchJSON(name, in.Archs[name]); err != nil {
			return nil, fmt.Errorf("platform: spec.archs[%q]: %w", name, err)
		}
	}

	f := &File{Name: in.Name, Antenna: in.Antenna}
	seen := make(map[string]bool, len(in.Domains))
	for i, raw := range in.Domains {
		path := fmt.Sprintf("spec.domains[%d]", i)
		var dj domainJSON
		if err := decodeStrict(raw, &dj, path); err != nil {
			return nil, err
		}
		switch {
		case dj.PDN != nil && dj.PDNRef != "":
			return nil, fmt.Errorf("platform: %s: both pdn and pdn_ref given; pick one", path)
		case dj.PDN == nil && dj.PDNRef == "":
			return nil, fmt.Errorf("platform: %s: neither pdn nor pdn_ref given", path)
		case dj.PDNRef != "":
			p, ok := in.PDNs[dj.PDNRef]
			if !ok {
				return nil, fmt.Errorf("platform: %s.pdn_ref: no pdns entry %q", path, dj.PDNRef)
			}
			dj.PDN = &p
		}
		spec, err := specFromJSON(specJSON{
			Name:              dj.Name,
			Board:             dj.Board,
			ISA:               dj.ISA,
			PDN:               *dj.PDN,
			Core:              dj.Core,
			TotalCores:        dj.TotalCores,
			MaxClockHz:        dj.MaxClockHz,
			ClockStepHz:       dj.ClockStepHz,
			VoltageVisibility: dj.VoltageVisibility,
			EMPath:            dj.EMPath,
			Failure:           dj.Failure,
			TechNode:          dj.TechNode,
			OS:                dj.OS,
		}, path)
		if err != nil {
			return nil, err
		}
		if seen[spec.Name] {
			return nil, fmt.Errorf("platform: %s: duplicate domain %q", path, spec.Name)
		}
		seen[spec.Name] = true
		f.Specs = append(f.Specs, spec)
	}
	return f, nil
}

// LoadPlatformJSON reads a spec file of any supported version from r and
// builds the platform it describes. A v1 (single-domain) file gets the
// default loop antenna, exactly as the CLI always treated it.
func LoadPlatformJSON(r io.Reader) (*Platform, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("platform: reading spec: %w", err)
	}
	f, err := ParsePlatformSpec(data)
	if err != nil {
		return nil, err
	}
	return f.Build()
}

// SavePlatformSpecJSON writes a whole platform as an indented v2 spec
// file. Data-defined architectures are embedded as "archs" entries (the
// two legacy built-ins are referenced by name only); PDN blocks that are
// byte-identical across domains are hoisted into one named "pdns" entry
// referenced by each sharer, preserving the shared-rail structure on a
// round trip.
func SavePlatformSpecJSON(w io.Writer, p *Platform) error {
	out := fileJSON{
		SpecVersion: SpecVersion,
		Name:        p.Name,
		Antenna:     p.Antenna,
	}
	domains := p.Domains()

	// Hoist PDNs shared (identically) by several domains.
	shared := make(map[string]int) // pdn name -> sharer count
	for _, d := range domains {
		for _, o := range domains {
			if d != o && reflect.DeepEqual(d.Spec.PDN, o.Spec.PDN) {
				shared[d.Spec.PDN.Name]++
				break
			}
		}
	}

	for _, d := range domains {
		s := d.Spec
		if isa.PoolFor(s.ISA) == nil {
			return fmt.Errorf("platform: encoding %s: domain %s has no registered instruction pool", p.Name, s.Name)
		}
		if s.ISA != isa.ARM64 && s.ISA != isa.X86 {
			if out.Archs == nil {
				out.Archs = make(map[string]json.RawMessage)
			}
			if _, done := out.Archs[s.ISA.String()]; !done {
				raw, err := isa.MarshalPoolJSON(isa.PoolFor(s.ISA))
				if err != nil {
					return fmt.Errorf("platform: encoding %s: arch %s: %w", p.Name, s.ISA, err)
				}
				out.Archs[s.ISA.String()] = raw
			}
		}
		sj := specToJSON(s)
		dj := domainJSON{
			Name:              sj.Name,
			Board:             sj.Board,
			ISA:               sj.ISA,
			Core:              sj.Core,
			TotalCores:        sj.TotalCores,
			MaxClockHz:        sj.MaxClockHz,
			ClockStepHz:       sj.ClockStepHz,
			VoltageVisibility: sj.VoltageVisibility,
			EMPath:            sj.EMPath,
			Failure:           sj.Failure,
			TechNode:          sj.TechNode,
			OS:                sj.OS,
		}
		if _, ok := shared[s.PDN.Name]; ok {
			if out.PDNs == nil {
				out.PDNs = make(map[string]pdn.Params)
			}
			if prev, dup := out.PDNs[s.PDN.Name]; dup && !reflect.DeepEqual(prev, s.PDN) {
				return fmt.Errorf("platform: encoding %s: two distinct PDNs share the name %q", p.Name, s.PDN.Name)
			}
			out.PDNs[s.PDN.Name] = s.PDN
			dj.PDNRef = s.PDN.Name
		} else {
			pdnCopy := s.PDN
			dj.PDN = &pdnCopy
		}
		raw, err := json.Marshal(dj)
		if err != nil {
			return fmt.Errorf("platform: encoding %s: domain %s: %w", p.Name, s.Name, err)
		}
		out.Domains = append(out.Domains, raw)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("platform: encoding platform spec: %w", err)
	}
	return nil
}
