package platform

// Byte-identity pins for the spec registry refactor. Before this package's
// platforms became embedded spec files they were Go constructors; these
// tests replicate the removed constructors verbatim and prove that a
// registry-loaded platform is indistinguishable from the compiled-in one:
// same Spec structs (DeepEqual), same SpecContentHash (so every persistent
// castore/memo key written before the refactor still hits), and same PDN
// transfer spectra bit for bit.

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/em"
	"repro/internal/isa"
	"repro/internal/pdn"
	"repro/internal/uarch"
)

// --- the removed boards.go constructors, verbatim ---

func oldJunoA72PDN() pdn.Params {
	return pdn.Params{
		Name:       "juno-a72",
		VNominal:   1.0,
		CDieCore:   12e-9,
		CDieUncore: 7.3e-9,
		RDie:       0.014,
		LPkg:       136.9e-12,
		RPkgTrace:  0.4e-3,
		CPkg:       1e-6,
		ESRPkg:     15e-3,
		ESLPkg:     50e-12,
		LPcb:       2e-9,
		RPcbTrace:  1e-3,
		CPcb:       300e-6,
		ESRPcb:     2e-3,
		ESLPcb:     1e-9,
		LVrm:       20e-9,
		RVrm:       0.5e-3,
	}
}

func oldJunoA53PDN() pdn.Params {
	p := oldJunoA72PDN()
	p.Name = "juno-a53"
	p.CDieCore = 4e-9
	p.CDieUncore = 15.7e-9
	p.RDie = 0.012
	p.LPkg = 91.8e-12
	return p
}

func oldAthlonPDN() pdn.Params {
	return pdn.Params{
		Name:       "athlon-ii",
		VNominal:   1.4,
		CDieCore:   10e-9,
		CDieUncore: 10e-9,
		RDie:       0.005,
		LPkg:       75.68e-12,
		RPkgTrace:  0.15e-3,
		CPkg:       4e-6,
		ESRPkg:     12e-3,
		ESLPkg:     8e-12,
		LPcb:       1.2e-9,
		RPcbTrace:  0.5e-3,
		CPcb:       1000e-6,
		ESRPcb:     1.5e-3,
		ESLPcb:     1e-9,
		LVrm:       12e-9,
		RVrm:       0.3e-3,
	}
}

func oldGPUPDN() pdn.Params {
	return pdn.Params{
		Name:       "gpu-card",
		VNominal:   1.05,
		CDieCore:   15e-9,
		CDieUncore: 40e-9,
		RDie:       0.004,
		LPkg:       28.5e-12,
		RPkgTrace:  0.2e-3,
		CPkg:       6e-6,
		ESRPkg:     10e-3,
		ESLPkg:     20e-12,
		LPcb:       1.5e-9,
		RPcbTrace:  0.6e-3,
		CPcb:       800e-6,
		ESRPcb:     1.5e-3,
		ESLPcb:     1e-9,
		LVrm:       10e-9,
		RVrm:       0.3e-3,
	}
}

func oldJunoR2() (*Platform, error) {
	a72 := Spec{
		Name:              DomainA72,
		Board:             "Juno Board R2",
		ISA:               isa.ARM64,
		PDN:               oldJunoA72PDN(),
		Core:              uarch.CortexA72(),
		TotalCores:        2,
		MaxClockHz:        1.2e9,
		ClockStepHz:       20e6,
		VoltageVisibility: "oc-dso",
		EMPath:            em.Path{DistanceM: 0.07, CouplingK: 1e-5, RefHz: 100e6, RefDistanceM: 0.07},
		Failure:           FailureParams{VCritAtMax: 0.739, SlackPerHz: 1.0e-10, SDCBand: 0.010},
		TechNode:          16,
		OS:                "Debian (4.4.0-135-arm64)",
	}
	a53 := Spec{
		Name:              DomainA53,
		Board:             "Juno Board R2",
		ISA:               isa.ARM64,
		PDN:               oldJunoA53PDN(),
		Core:              uarch.CortexA53(),
		TotalCores:        4,
		MaxClockHz:        0.95e9,
		ClockStepHz:       25e6,
		VoltageVisibility: "none",
		EMPath:            em.Path{DistanceM: 0.07, CouplingK: 0.8e-5, RefHz: 100e6, RefDistanceM: 0.07},
		Failure:           FailureParams{VCritAtMax: 0.788, SlackPerHz: 1.0e-10, SDCBand: 0.010},
		TechNode:          16,
		OS:                "Debian (4.4.0-135-arm64)",
	}
	return NewPlatform("juno-r2", em.DefaultLoopAntenna(), a72, a53)
}

func oldAMDDesktop() (*Platform, error) {
	athlon := Spec{
		Name:              DomainAthlon,
		Board:             "Asus M5A78L LE",
		ISA:               isa.X86,
		PDN:               oldAthlonPDN(),
		Core:              uarch.AthlonII(),
		TotalCores:        4,
		MaxClockHz:        3.1e9,
		ClockStepHz:       100e6,
		VoltageVisibility: "kelvin-pads",
		EMPath:            em.Path{DistanceM: 0.07, CouplingK: 2e-5, RefHz: 100e6, RefDistanceM: 0.07},
		Failure:           FailureParams{VCritAtMax: 1.187, SlackPerHz: 2.0e-11, SDCBand: 0.0125},
		TechNode:          45,
		OS:                "Windows 8.1",
	}
	return NewPlatform("amd-desktop", em.DefaultLoopAntenna(), athlon)
}

func oldGPUCard() (*Platform, error) {
	smx := Spec{
		Name:              DomainGPU,
		Board:             "discrete GPU card",
		ISA:               isa.ARM64,
		PDN:               oldGPUPDN(),
		Core:              GPUSM(),
		TotalCores:        8,
		MaxClockHz:        1.1e9,
		ClockStepHz:       25e6,
		VoltageVisibility: "none",
		EMPath:            em.Path{DistanceM: 0.06, CouplingK: 1.5e-5, RefHz: 100e6, RefDistanceM: 0.07},
		Failure:           FailureParams{VCritAtMax: 0.80, SlackPerHz: 1.2e-10, SDCBand: 0.010},
		TechNode:          12,
		OS:                "driver-managed",
	}
	return NewPlatform("gpu-card", em.DefaultLoopAntenna(), smx)
}

// --- the pins ---

var pinnedPlatforms = []struct {
	name string
	old  func() (*Platform, error)
}{
	{"juno-r2", oldJunoR2},
	{"amd-desktop", oldAMDDesktop},
	{"gpu-card", oldGPUCard},
}

// TestRegistrySpecsPinnedToConstructors proves the embedded spec files load
// into exactly the Spec structs the deleted constructors produced.
func TestRegistrySpecsPinnedToConstructors(t *testing.T) {
	for _, pc := range pinnedPlatforms {
		want, err := pc.old()
		if err != nil {
			t.Fatalf("%s: old constructor: %v", pc.name, err)
		}
		got, err := Build(pc.name)
		if err != nil {
			t.Fatalf("%s: registry build: %v", pc.name, err)
		}
		if got.Name != want.Name {
			t.Errorf("%s: platform name %q, want %q", pc.name, got.Name, want.Name)
		}
		if !reflect.DeepEqual(got.Antenna, want.Antenna) {
			t.Errorf("%s: antenna differs:\n got %+v\nwant %+v", pc.name, got.Antenna, want.Antenna)
		}
		gd, wd := got.Domains(), want.Domains()
		if len(gd) != len(wd) {
			t.Fatalf("%s: %d domains, want %d", pc.name, len(gd), len(wd))
		}
		for i := range gd {
			if !reflect.DeepEqual(gd[i].Spec, wd[i].Spec) {
				t.Errorf("%s: domain %s spec differs:\n got %+v\nwant %+v",
					pc.name, wd[i].Spec.Name, gd[i].Spec, wd[i].Spec)
			}
		}
	}
}

// TestRegistrySpecContentHashStable pins the persistent-cache identity: a
// registry-loaded domain must produce the same SpecContentHash as the old
// compiled-in one, so every castore entry written before the refactor still
// resolves.
func TestRegistrySpecContentHashStable(t *testing.T) {
	for _, pc := range pinnedPlatforms {
		want, err := pc.old()
		if err != nil {
			t.Fatalf("%s: old constructor: %v", pc.name, err)
		}
		got, err := Build(pc.name)
		if err != nil {
			t.Fatalf("%s: registry build: %v", pc.name, err)
		}
		gd, wd := got.Domains(), want.Domains()
		for i := range gd {
			gh, wh := gd[i].SpecContentHash(), wd[i].SpecContentHash()
			if gh != wh {
				t.Errorf("%s/%s: SpecContentHash %#x, want %#x (castore keys would move)",
					pc.name, wd[i].Spec.Name, gh, wh)
			}
		}
	}
}

// TestRegistrySpectraIdentity pins the electrical model end to end: the
// PDN transfer spectra computed from a registry-loaded domain are bit-
// identical to the old constructor's.
func TestRegistrySpectraIdentity(t *testing.T) {
	for _, pc := range pinnedPlatforms {
		want, err := pc.old()
		if err != nil {
			t.Fatalf("%s: old constructor: %v", pc.name, err)
		}
		got, err := Build(pc.name)
		if err != nil {
			t.Fatalf("%s: registry build: %v", pc.name, err)
		}
		gd, wd := got.Domains(), want.Domains()
		for i := range gd {
			dt := 1.0 / gd[i].ClockHz()
			gts, err := gd[i].transferSet(1024, dt)
			if err != nil {
				t.Fatalf("%s/%s: registry transfer set: %v", pc.name, gd[i].Spec.Name, err)
			}
			wts, err := wd[i].transferSet(1024, dt)
			if err != nil {
				t.Fatalf("%s/%s: constructor transfer set: %v", pc.name, wd[i].Spec.Name, err)
			}
			if !reflect.DeepEqual(gts, wts) {
				t.Errorf("%s/%s: transfer spectra differ between registry and constructor",
					pc.name, wd[i].Spec.Name)
			}
		}
	}
}

// TestRegistrySourceRoundTrip proves each embedded source re-parses to the
// same Spec set (load → save → load is a fixed point).
func TestRegistrySourceRoundTrip(t *testing.T) {
	for _, name := range BuiltinNames() {
		src, err := Builtin().Source(name)
		if err != nil {
			t.Fatalf("%s: source: %v", name, err)
		}
		f1, err := ParsePlatformSpec(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		p1, err := f1.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
		var buf2 bytes.Buffer
		if err := SavePlatformSpecJSON(&buf2, p1); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		f2, err := ParsePlatformSpec(buf2.Bytes())
		if err != nil {
			t.Fatalf("%s: re-parse of saved spec: %v", name, err)
		}
		if !reflect.DeepEqual(f1.Specs, f2.Specs) {
			t.Errorf("%s: specs changed across save/load round trip", name)
		}
		if !reflect.DeepEqual(f1.Antenna, f2.Antenna) {
			t.Errorf("%s: antenna changed across save/load round trip", name)
		}
	}
}
