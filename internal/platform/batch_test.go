package platform

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/slab"
	"repro/internal/uarch"
)

func requireSameFloats(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d]: %v != %v", label, i, got[i], want[i])
		}
	}
}

// TestSpectraAtArenaMatchesSpectraAt pins the batched sweep's evaluation
// path: an arena-backed spectra computation served from a campaign-primed
// trace must be bit-identical to the scalar memoized path at every clock,
// and the memo must still serve warm entries to the arena path.
func TestSpectraAtArenaMatchesSpectraAt(t *testing.T) {
	d := domain(t, juno(t), DomainA72)
	l := Load{Seq: probeLoop(t, d.Spec.Pool()), ActiveCores: 2}
	dt, n := 0.5e-9, 2048

	clocks := d.ClockSteps()
	var maxClock float64
	for _, c := range clocks {
		if c > maxClock {
			maxClock = c
		}
	}
	tr := d.PrimeTraceAt(l, dt, n, maxClock)
	if tr == nil {
		t.Fatal("priming failed for a valid campaign")
	}

	var ar slab.Arena
	for _, clock := range clocks {
		ar.Reset()
		// Arena path first: the fresh domain's memo has no entry, so this
		// exercises the computing branch (which must NOT install).
		gotF, gotV, gotI, err := d.SpectraAtArena(l, dt, n, clock, tr, &ar)
		if err != nil {
			t.Fatalf("clock %v: arena spectra: %v", clock, err)
		}
		wantF, wantV, wantI, _, err := d.SpectraAt(l, dt, n, clock)
		if err != nil {
			t.Fatalf("clock %v: scalar spectra: %v", clock, err)
		}
		requireSameFloats(t, fmt.Sprintf("clock %v freqs", clock), gotF, wantF)
		requireSameFloats(t, fmt.Sprintf("clock %v vAmp", clock), gotV, wantV)
		requireSameFloats(t, fmt.Sprintf("clock %v iAmp", clock), gotI, wantI)
	}

	// The scalar calls above installed memo entries; the arena path must
	// now serve them as hits.
	hits0, _, _ := d.SpectraCacheStats()
	ar.Reset()
	if _, _, _, err := d.SpectraAtArena(l, dt, n, clocks[0], tr, &ar); err != nil {
		t.Fatal(err)
	}
	if hits1, _, _ := d.SpectraCacheStats(); hits1 != hits0+1 {
		t.Fatalf("warm arena call not served by memo: hits %d -> %d", hits0, hits1)
	}
}

// TestLadderMatchesSteadyResponseAt pins the V_MIN ladder: every supply
// step's (minV, droop) must match the scalar SteadyResponseAt pipeline bit
// for bit, the per-supply memo must be transparent, and the out-of-range
// error must be the scalar path's.
func TestLadderMatchesSteadyResponseAt(t *testing.T) {
	d := domain(t, juno(t), DomainA72)
	l := Load{Seq: probeLoop(t, d.Spec.Pool()), ActiveCores: 2}
	dt, n := 0.5e-9, 2048
	clock, err := d.SnapClock(0.9e9)
	if err != nil {
		t.Fatal(err)
	}

	var ar slab.Arena
	ld, err := d.LadderAt(l, dt, n, clock, nil, &ar)
	if err != nil {
		t.Fatal(err)
	}
	nominal := d.Spec.PDN.VNominal
	for _, supply := range []float64{nominal, nominal - 0.03, nominal - 0.11, nominal * 0.7} {
		minV, droop, err := ld.MinVDroop(supply)
		if err != nil {
			t.Fatalf("supply %v: %v", supply, err)
		}
		resp, _, err := d.SteadyResponseAt(l, dt, n, clock, supply)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(minV) != math.Float64bits(resp.MinVoltage()) {
			t.Fatalf("supply %v: minV %v != %v", supply, minV, resp.MinVoltage())
		}
		if math.Float64bits(droop) != math.Float64bits(resp.MaxDroop(supply)) {
			t.Fatalf("supply %v: droop %v != %v", supply, droop, resp.MaxDroop(supply))
		}
		// The memoized revisit must return the same bits.
		minV2, droop2, err := ld.MinVDroop(supply)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(minV2) != math.Float64bits(minV) || math.Float64bits(droop2) != math.Float64bits(droop) {
			t.Fatalf("supply %v: memoized revisit diverges", supply)
		}
	}

	_, _, gotErr := ld.MinVDroop(-0.1)
	_, _, wantErr := d.SteadyResponseAt(l, dt, n, clock, -0.1)
	if gotErr == nil || wantErr == nil || gotErr.Error() != wantErr.Error() {
		t.Fatalf("out-of-range error mismatch: ladder %v, scalar %v", gotErr, wantErr)
	}

	// A ladder served from a primed trace must agree with the untraced one.
	tr := d.PrimeTraceAt(l, dt, n, clock)
	var ar2 slab.Arena
	ld2, err := d.LadderAt(l, dt, n, clock, tr, &ar2)
	if err != nil {
		t.Fatal(err)
	}
	a1, b1, err := ld.MinVDroop(nominal - 0.05)
	if err != nil {
		t.Fatal(err)
	}
	a2, b2, err := ld2.MinVDroop(nominal - 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a1) != math.Float64bits(a2) || math.Float64bits(b1) != math.Float64bits(b2) {
		t.Fatal("traced ladder diverges from untraced ladder")
	}
}

// TestSpectraCacheCapConfig exercises the configurable memo bound: the
// default, an explicit shrink (which must evict down to the new cap), the
// grow-only campaign sizing, and the reset back to the default.
func TestSpectraCacheCapConfig(t *testing.T) {
	d := domain(t, juno(t), DomainA72)
	if got := d.SpectraCacheCap(); got != DefaultSpectraCacheCap {
		t.Fatalf("default cap = %d, want %d", got, DefaultSpectraCacheCap)
	}

	l := Load{Seq: probeLoop(t, d.Spec.Pool()), ActiveCores: 2}
	dt, n := 0.5e-9, 1024
	clocks := d.ClockSteps()
	if len(clocks) < 3 {
		t.Fatalf("need at least 3 clock steps, have %d", len(clocks))
	}
	d.SetSpectraCacheCap(2)
	for _, clock := range clocks[:3] {
		if _, _, _, _, err := d.SpectraAt(l, dt, n, clock); err != nil {
			t.Fatal(err)
		}
	}
	d.spectraMu.Lock()
	live := len(d.spectra)
	d.spectraMu.Unlock()
	if live > 2 {
		t.Fatalf("cap 2 holds %d entries", live)
	}
	if _, _, evictions := d.SpectraCacheStats(); evictions == 0 {
		t.Fatal("no evictions counted past the cap")
	}

	d.EnsureSpectraCacheCap(8)
	if got := d.SpectraCacheCap(); got != 8 {
		t.Fatalf("ensured cap = %d, want 8", got)
	}
	d.EnsureSpectraCacheCap(4) // grow-only: must not shrink
	if got := d.SpectraCacheCap(); got != 8 {
		t.Fatalf("ensure shrank the cap to %d", got)
	}
	d.SetSpectraCacheCap(0) // back to the default
	if got := d.SpectraCacheCap(); got != DefaultSpectraCacheCap {
		t.Fatalf("reset cap = %d, want %d", got, DefaultSpectraCacheCap)
	}
}

// TestPrimeTraceAtDegenerateInputs: priming is best-effort and must return
// nil (not panic) on inputs the per-point path will reject properly.
func TestPrimeTraceAtDegenerateInputs(t *testing.T) {
	d := domain(t, juno(t), DomainA72)
	l := Load{Seq: probeLoop(t, d.Spec.Pool()), ActiveCores: 2}
	if tr := d.PrimeTraceAt(Load{}, 0.5e-9, 1024, 1e9); tr != nil {
		t.Fatal("empty load primed")
	}
	if tr := d.PrimeTraceAt(l, 0, 1024, 1e9); tr != nil {
		t.Fatal("zero dt primed")
	}
	if tr := d.PrimeTraceAt(l, 0.5e-9, 0, 1e9); tr != nil {
		t.Fatal("zero n primed")
	}
	var nilTrace *uarch.Trace
	if nilTrace.Covers(10) {
		t.Fatal("nil trace claims coverage")
	}
}
