package platform

// Validation tests for the versioned spec decoder: every rejectable defect
// class gets a table entry proving it is an error (not a silent zero) and
// that the error names the offending field or section.

import (
	"strings"
	"testing"
)

// v2Valid is a minimal correct v2 platform spec; the defect cases below
// are single-token mutations of it, so each test isolates one defect.
const v2Valid = `{
  "spec_version": 2,
  "name": "testboard",
  "antenna": {"self_resonance_hz": 2.95e9, "q": 8, "feed_ohms": 30, "system_ohms": 50},
  "domains": [
    {
      "name": "dom0",
      "board": "test board",
      "isa": "arm64",
      "pdn": {"name": "rail0", "v_nominal": 1.0, "c_die_core": 1e-8, "c_die_uncore": 1e-8, "r_die": 0.01, "l_pkg": 1e-10, "r_pkg_trace": 4e-4, "c_pkg": 1e-6, "esr_pkg": 0.015, "esl_pkg": 5e-11, "l_pcb": 2e-9, "r_pcb_trace": 0.001, "c_pcb": 3e-4, "esr_pcb": 0.002, "esl_pcb": 1e-9, "l_vrm": 2e-8, "r_vrm": 5e-4},
      "core": {"name": "core0", "out_of_order": false, "issue_width": 2, "window_size": 8, "units": {"alu": 2, "muldiv": 1, "fp": 1, "simd": 1, "ls": 1, "branch": 1}, "charge_scale": 0.5, "base_charge": 5e-11, "idle_slot_charge": 6e-12, "current_slew_tau": 1.5e-9},
      "total_cores": 2,
      "max_clock_hz": 1e9,
      "clock_step_hz": 2.5e7,
      "voltage_visibility": "none",
      "em_path": {"distance_m": 0.07, "coupling_k": 1e-5, "ref_hz": 1e8, "ref_distance_m": 0.07},
      "failure": {"v_crit_at_max": 0.7, "slack_per_hz": 1e-10, "sdc_band": 0.01},
      "tech_node_nm": 16,
      "os": "test"
    }
  ]
}`

// mutate replaces one unique token of the valid spec, failing the test if
// the token is absent (which would silently test nothing).
func mutate(t *testing.T, old, new string) string {
	t.Helper()
	if !strings.Contains(v2Valid, old) {
		t.Fatalf("mutation token %q not in template", old)
	}
	return strings.Replace(v2Valid, old, new, 1)
}

func TestParsePlatformSpecValid(t *testing.T) {
	f, err := ParsePlatformSpec([]byte(v2Valid))
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if f.Name != "testboard" || len(f.Specs) != 1 {
		t.Fatalf("parsed %q with %d domains", f.Name, len(f.Specs))
	}
	if _, err := f.Build(); err != nil {
		t.Fatalf("valid spec does not build: %v", err)
	}
}

func TestParsePlatformSpecDefects(t *testing.T) {
	dupDomain := strings.Replace(v2Valid, `"domains": [
    {`, `"domains": [
    {
      "name": "dom0",
      "board": "test board",
      "isa": "arm64",
      "pdn": {"name": "rail0", "v_nominal": 1.0, "c_die_core": 1e-8, "c_die_uncore": 1e-8, "r_die": 0.01, "l_pkg": 1e-10, "r_pkg_trace": 4e-4, "c_pkg": 1e-6, "esr_pkg": 0.015, "esl_pkg": 5e-11, "l_pcb": 2e-9, "r_pcb_trace": 0.001, "c_pcb": 3e-4, "esr_pcb": 0.002, "esl_pcb": 1e-9, "l_vrm": 2e-8, "r_vrm": 5e-4},
      "core": {"name": "core0", "out_of_order": false, "issue_width": 2, "window_size": 8, "units": {"alu": 2, "muldiv": 1, "fp": 1, "simd": 1, "ls": 1, "branch": 1}, "charge_scale": 0.5, "base_charge": 5e-11, "idle_slot_charge": 6e-12, "current_slew_tau": 1.5e-9},
      "total_cores": 2,
      "max_clock_hz": 1e9,
      "clock_step_hz": 2.5e7,
      "voltage_visibility": "none",
      "em_path": {"distance_m": 0.07, "coupling_k": 1e-5, "ref_hz": 1e8, "ref_distance_m": 0.07},
      "failure": {"v_crit_at_max": 0.7, "slack_per_hz": 1e-10, "sdc_band": 0.01},
      "tech_node_nm": 16,
      "os": "test"
    },
    {`, 1)

	cases := []struct {
		name    string
		src     string
		wantSub string // must appear in the error
	}{
		{"unknown top-level field", mutate(t, `"name": "testboard"`, `"name": "testboard", "colour": "red"`), "colour"},
		{"misspelled domain field", mutate(t, `"total_cores"`, `"total_coers"`), "total_coers"},
		{"bad isa name", mutate(t, `"isa": "arm64"`, `"isa": "mips"`), "mips"},
		{"unit name typo", mutate(t, `"simd": 1,`, `"sind": 1,`), "sind"},
		{"missing unit", mutate(t, `"alu": 2, `, ``), "alu"},
		{"zero issue width", mutate(t, `"issue_width": 2`, `"issue_width": 0`), "issue width"},
		{"negative pdn value", mutate(t, `"c_die_core": 1e-8`, `"c_die_core": -1e-8`), "CDieCore"},
		{"zero clock step", mutate(t, `"clock_step_hz": 2.5e7`, `"clock_step_hz": 0`), "clocking"},
		{"zero cores", mutate(t, `"total_cores": 2`, `"total_cores": 0`), "cores"},
		{"bad antenna", mutate(t, `"q": 8`, `"q": 0`), "antenna"},
		{"empty platform name", mutate(t, `"name": "testboard"`, `"name": ""`), "name"},
		{"unsupported version", mutate(t, `"spec_version": 2`, `"spec_version": 3`), "spec_version 3"},
		{"duplicate domain", dupDomain, "duplicate domain"},
		{"missing pdn", mutate(t, `"pdn": {"name": "rail0",`, `"unused_pdn": {"name": "rail0",`), "pdn"},
		{"dangling pdn_ref", mutate(t, `"isa": "arm64",`, `"isa": "arm64", "pdn_ref": "nope",`), "pdn"},
		{"negative instruction charge",
			mutate(t, `"name": "testboard",`,
				`"name": "testboard", "archs": {"toyisa": {"int_regs": 8, "vec_regs": 8, "mem_slots": 4, "instructions": [{"mnemonic": "add", "class": "int-short", "unit": "alu", "latency": 1, "charge": -1e-10, "nsrc": 2}]}},`),
			"add"},
		{"bad regfile in arch",
			mutate(t, `"name": "testboard",`,
				`"name": "testboard", "archs": {"toyisa": {"int_regs": 8, "vec_regs": 8, "mem_slots": 4, "instructions": [{"mnemonic": "add", "class": "int-short", "unit": "alu", "latency": 1, "charge": 1e-10, "regfile": "float80", "nsrc": 2}]}},`),
			"float80"},
		{"invalid arch name",
			mutate(t, `"name": "testboard",`,
				`"name": "testboard", "archs": {"Toy ISA": {"int_regs": 8, "vec_regs": 8, "mem_slots": 4, "instructions": []}},`),
			"Toy ISA"},
		{"trailing garbage", v2Valid + "{}", "after top-level value"},
		{"not json", "{nope", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParsePlatformSpec([]byte(tc.src))
			if err == nil {
				t.Fatalf("defect accepted")
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not name %q", err, tc.wantSub)
			}
		})
	}
}

// TestParsePlatformSpecBothPDNForms: pdn and pdn_ref together is
// ambiguous and rejected even when both resolve.
func TestParsePlatformSpecBothPDNForms(t *testing.T) {
	src := mutate(t, `"isa": "arm64",`, `"isa": "arm64", "pdn_ref": "shared",`)
	src = strings.Replace(src, `"name": "testboard",`,
		`"name": "testboard", "pdns": {"shared": {"name": "shared", "v_nominal": 1.0, "c_die_core": 1e-8, "c_die_uncore": 1e-8, "r_die": 0.01, "l_pkg": 1e-10, "r_pkg_trace": 4e-4, "c_pkg": 1e-6, "esr_pkg": 0.015, "esl_pkg": 5e-11, "l_pcb": 2e-9, "r_pcb_trace": 0.001, "c_pcb": 3e-4, "esr_pcb": 0.002, "esl_pcb": 1e-9, "l_vrm": 2e-8, "r_vrm": 5e-4}},`, 1)
	_, err := ParsePlatformSpec([]byte(src))
	if err == nil {
		t.Fatal("pdn+pdn_ref accepted")
	}
	if !strings.Contains(err.Error(), "pick one") {
		t.Errorf("error %q does not explain the conflict", err)
	}
}

// TestLoadSpecJSONUnknownField: the v1 decoder names a misspelled key
// instead of silently zeroing the field it was meant to set.
func TestLoadSpecJSONUnknownField(t *testing.T) {
	var buf strings.Builder
	p, err := Build("amd-desktop")
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveSpecJSON(&buf, p.Domains()[0].Spec); err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(buf.String(), `"max_clock_hz"`, `"max_clock_mhz"`, 1)
	_, err = LoadSpecJSON(strings.NewReader(bad))
	if err == nil {
		t.Fatal("misspelled field accepted")
	}
	if !strings.Contains(err.Error(), "max_clock_mhz") {
		t.Errorf("error %q does not name the offending key", err)
	}
}

// FuzzParsePlatformSpec: the strict decoder must never panic and must
// never hand back a platform that fails to build — whatever the input.
func FuzzParsePlatformSpec(f *testing.F) {
	f.Add([]byte(v2Valid))
	f.Add([]byte(`{"spec_version": 2}`))
	f.Add([]byte(`{"name": "x", "isa": "arm64"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Add([]byte(`{"spec_version": 9e99}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParsePlatformSpec(data)
		if err != nil {
			return
		}
		if _, err := spec.Build(); err != nil {
			t.Fatalf("parsed spec does not build: %v", err)
		}
	})
}
