package platform

// Disk tier under the per-domain spectra memo. The in-memory memo is scoped
// to one Domain, so its key omits the domain itself; the disk store is
// shared across domains and processes, so the disk key additionally folds a
// content hash of the full domain Spec — two boards with different PDNs,
// core models or EM paths can share one cache directory without ever
// reading each other's spectra.
//
// Unlike the trace tier, the spectra pipeline has no per-key simulation
// lock, so the store's singleflight (castore.Do) is what keeps a cold
// sweep's parallel workers from each paying resample + FFT for the same
// operating point.

import (
	"encoding/json"
	"sync/atomic"

	"repro/internal/castore"
	"repro/internal/detrand"
	"repro/internal/uarch"
)

// spectraNS is the store namespace for memoized spectra.
const spectraNS = "spectra"

// spectraCodecVersion is bumped whenever the payload layout or the meaning
// of any persisted field changes; stale entries read as plain misses.
const spectraCodecVersion = 1

var spectraPersist atomic.Pointer[castore.Store]

// SetPersistentStore installs (nil removes) the disk-backed tier under
// every domain's spectra memo and returns the previous store.
func SetPersistentStore(s *castore.Store) (prev *castore.Store) {
	return spectraPersist.Swap(s)
}

// PersistentStore returns the installed disk tier, or nil.
func PersistentStore() *castore.Store { return spectraPersist.Load() }

// SpecContentHash returns a content hash of the domain's full static Spec
// (PDN, core model, EM path, failure model, clocking — every field that
// shapes an electrical result). Computed once per domain from the canonical
// JSON encoding of the Spec, which covers every exported field without a
// hand-maintained fold that could silently fall behind a Spec change.
func (d *Domain) SpecContentHash() uint64 {
	d.specHashOnce.Do(func() {
		buf, err := json.Marshal(d.Spec)
		if err != nil {
			// Marshal of a pure-value Spec cannot fail; if it ever does,
			// a zero hash would alias unrelated domains, so poison the
			// bucket with the error text instead.
			buf = []byte("unmarshalable spec: " + err.Error())
		}
		h := detrand.NewHash()
		h.String(string(buf))
		d.specHashV = h.Sum()
	})
	return d.specHashV
}

// spectraDiskKey folds the domain identity into the memo key.
func (d *Domain) spectraDiskKey(k spectraKey) uint64 {
	h := detrand.NewHash()
	h.Uint64(d.SpecContentHash())
	h.Uint64(k.load)
	h.Int(k.powered)
	h.Float64(k.clock)
	h.Float64(k.supply)
	h.Float64(k.dt)
	h.Int(k.n)
	return h.Sum()
}

// encodeSpectraEntry flattens one memo entry: the identifying fields first
// (echoed back for verification on decode), then the three spectra rows and
// the full simulation Result — everything a memo hit hands out, so a
// disk-warm hit is indistinguishable from an in-memory one.
func encodeSpectraEntry(d *Domain, k spectraKey, ent *spectraEntry) []byte {
	enc := castore.NewEnc(64 + 8*(3*len(ent.freqs)+len(ent.res.Charge)) + 256)
	enc.Uint64(d.SpecContentHash())
	enc.Uint64(k.load)
	enc.Int(k.powered)
	enc.Float64(k.clock)
	enc.Float64(k.supply)
	enc.Float64(k.dt)
	enc.Int(k.n)
	enc.Floats(ent.freqs)
	enc.Floats(ent.vAmp)
	enc.Floats(ent.iAmp)
	uarch.AppendResult(enc, ent.res)
	return enc.Bytes()
}

// decodeSpectraEntry parses a stored payload, returning nil (a miss) on any
// truncation or identity mismatch.
func decodeSpectraEntry(payload []byte, d *Domain, k spectraKey) *spectraEntry {
	dec := castore.NewDec(payload)
	specHash := dec.Uint64()
	load := dec.Uint64()
	powered := dec.Int()
	clock := dec.Float64()
	supply := dec.Float64()
	dt := dec.Float64()
	n := dec.Int()
	ent := &spectraEntry{}
	ent.freqs = dec.Floats()
	ent.vAmp = dec.Floats()
	ent.iAmp = dec.Floats()
	ent.res = uarch.ReadResult(dec)
	if dec.Finish() != nil {
		return nil
	}
	if specHash != d.SpecContentHash() || load != k.load || powered != k.powered ||
		clock != k.clock || supply != k.supply || dt != k.dt || n != k.n {
		return nil
	}
	if len(ent.freqs) != len(ent.vAmp) || len(ent.freqs) != len(ent.iAmp) {
		return nil
	}
	return ent
}

// spectraComputeOrDisk serves a spectra-memo miss: straight computation
// when no store is installed, otherwise through the store's singleflight
// with write-through. A payload that fails verification (a cross-domain
// key collision) falls back to computing uncached rather than fighting
// over the slot.
func (d *Domain) spectraComputeOrDisk(k spectraKey, compute func() (*spectraEntry, error)) (*spectraEntry, error) {
	s := spectraPersist.Load()
	if s == nil {
		return compute()
	}
	var computed *spectraEntry
	payload, err := s.Do(spectraNS, spectraCodecVersion, d.spectraDiskKey(k), func() ([]byte, error) {
		ent, err := compute()
		if err != nil {
			return nil, err
		}
		computed = ent
		return encodeSpectraEntry(d, k, ent), nil
	})
	if err != nil {
		return nil, err
	}
	if computed != nil {
		return computed, nil
	}
	if ent := decodeSpectraEntry(payload, d, k); ent != nil {
		return ent, nil
	}
	return compute()
}
