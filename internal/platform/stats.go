package platform

import (
	"fmt"
	"strings"

	"repro/internal/uarch"
)

// EvalStats returns a multi-line human-readable summary of the evaluation
// caches serving this domain: the spectra memo, the clock-invariant uarch
// trace cache and the lineage checkpoint store. The CLIs print it under -v
// so every tool reports the same counters in the same format.
func (d *Domain) EvalStats() string {
	var b strings.Builder
	hits, misses, evictions := d.SpectraCacheStats()
	total := hits + misses
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(hits) / float64(total)
	}
	fmt.Fprintf(&b, "spectra cache: %d hits / %d misses / %d evictions (%.1f%% hit rate)\n",
		hits, misses, evictions, pct)
	ts := uarch.TraceCacheStats()
	fmt.Fprintf(&b, "trace cache: %d hits / %d misses / %d extensions / %d evictions, %d entries (%d cycles held)\n",
		ts.Hits, ts.Misses, ts.Extensions, ts.Evictions, ts.Entries, ts.Cycles)
	cs := uarch.CheckpointStoreStats()
	fmt.Fprintf(&b, "checkpoints: %d hits / %d misses / %d stored / %d evictions, %d entries (mean resume depth %.1f insts)\n",
		cs.Hits, cs.Misses, cs.Stored, cs.Evictions, cs.Entries, cs.MeanResumeDepth)
	fmt.Fprintf(&b, "steady-state extrapolation: %d simulated cycles skipped", uarch.ExtrapolatedCycles())
	if s := PersistentStore(); s != nil {
		fmt.Fprintf(&b, "\n%s", s.Stats())
	}
	return b.String()
}
