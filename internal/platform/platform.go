// Package platform assembles the experimental systems of the paper's
// Table 1: the ARM Juno R2 board with its Cortex-A72 (dual-core, OC-DSO
// instrumented) and Cortex-A53 (quad-core, no voltage visibility) voltage
// domains, and the AMD Athlon II X4 645 desktop (on-package Kelvin pads).
//
// A Domain couples a calibrated PDN model, a core model, an instruction
// pool and an EM coupling path, and exposes the electrical responses the
// simulated instruments measure. Expensive PDN transfer functions are
// cached per (powered cores, supply, sampling) configuration, since GA runs
// evaluate thousands of individuals against the same domain state.
package platform

import (
	"container/list"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/em"
	"repro/internal/isa"
	"repro/internal/pdn"
	"repro/internal/uarch"
)

// FailureParams calibrates the V_MIN failure model of a domain (used by
// internal/vmin): the critical voltage below which timing fails at the
// domain's maximum clock, and how much slack returns per Hz of downclock.
type FailureParams struct {
	// VCritAtMax is the die voltage at which logic first fails when
	// running at MaxClockHz.
	VCritAtMax float64 `json:"v_crit_at_max"`
	// SlackPerHz lowers the critical voltage as the clock drops:
	// vcrit(f) = VCritAtMax - SlackPerHz*(MaxClockHz-f).
	SlackPerHz float64 `json:"slack_per_hz"`
	// SDCBand is the voltage band just above outright crash in which
	// silent data corruption or application crashes appear first
	// (the paper observes ~10 mV).
	SDCBand float64 `json:"sdc_band"`
}

// Spec is the static description of one voltage domain.
type Spec struct {
	Name       string
	Board      string
	ISA        isa.Arch
	PDN        pdn.Params
	Core       uarch.Config
	TotalCores int
	MaxClockHz float64
	// ClockStepHz is the granularity of the clock control (the Juno
	// multiplier steps by 20 MHz, AMD Overdrive by 100 MHz).
	ClockStepHz float64
	// VoltageVisibility describes the direct measurement support
	// ("oc-dso", "kelvin-pads" or "none" — Table 1's rightmost column).
	VoltageVisibility string
	// EMPath couples this domain's package to the receiver antenna.
	EMPath em.Path
	// Failure calibrates the V_MIN model.
	Failure FailureParams
	// TechNode is the process node in nanometres (reporting only).
	TechNode int
	// OS is the host operating system (reporting only).
	OS string
}

// Domain is a voltage domain with runtime state: supply voltage, clock,
// and the set of powered cores.
type Domain struct {
	Spec Spec

	mu           sync.Mutex
	poweredCores int
	clockHz      float64
	supplyVolts  float64
	transfers    map[transferKey]*pdn.TransferSet

	// Spectra memoization: the spectra of a workload are a pure function of
	// (load, sampling, clock, supply, powered cores), so converged GA
	// populations that re-simulate the same elites every generation hit the
	// cache instead of re-running the uarch→power→FFT pipeline. Entries are
	// shared read-only slices; purity means eviction can never change a
	// result. Past spectraCacheCap entries the least recently used entry is
	// evicted (spectraOrder keeps the most recently used at the front), so a
	// converged population's elites survive a sweep's one-shot traffic.
	spectraMu        sync.Mutex
	spectra          map[spectraKey]*list.Element
	spectraOrder     *list.List // of *spectraNode
	spectraCap       int        // 0 = DefaultSpectraCacheCap
	spectraHits      atomic.Uint64
	spectraMisses    atomic.Uint64
	spectraEvictions atomic.Uint64

	// specHashV caches SpecContentHash — the Spec is immutable after
	// NewDomain, so the JSON canonicalization runs at most once.
	specHashOnce sync.Once
	specHashV    uint64
}

// transferKey omits the supply setting: the network is linear, so its
// small-signal transfers are supply-independent and one set serves every
// voltage step of a V_MIN search.
type transferKey struct {
	cores int
	n     int
	dt    float64
}

// spectraKey identifies one memoized spectra computation. The load enters
// as its content hash (sequence, active cores, phase stagger).
type spectraKey struct {
	load    uint64
	powered int
	clock   float64
	supply  float64
	dt      float64
	n       int
}

// spectraEntry holds the shared, read-only result of one spectra run.
type spectraEntry struct {
	freqs, vAmp, iAmp []float64
	res               *uarch.Result
}

// spectraNode is the LRU-list payload tying a cache key to its entry.
type spectraNode struct {
	key spectraKey
	ent *spectraEntry
}

// DefaultSpectraCacheCap bounds the memo to the most recently used entries
// when no per-domain cap has been configured (purity makes the eviction
// policy invisible to results). Campaigns whose grid exceeds the configured
// cap raise it via EnsureSpectraCacheCap so one pass over the grid cannot
// thrash entries the campaign itself still needs.
const DefaultSpectraCacheCap = 512

// NewDomain returns a domain at nominal conditions with all cores powered.
func NewDomain(spec Spec) (*Domain, error) {
	if err := spec.PDN.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Core.Validate(); err != nil {
		return nil, err
	}
	if err := spec.EMPath.Validate(); err != nil {
		return nil, err
	}
	if spec.TotalCores < 1 {
		return nil, fmt.Errorf("platform: domain %s has %d cores", spec.Name, spec.TotalCores)
	}
	if spec.MaxClockHz <= 0 || spec.ClockStepHz <= 0 {
		return nil, fmt.Errorf("platform: domain %s has invalid clocking", spec.Name)
	}
	if spec.Pool() == nil {
		return nil, fmt.Errorf("platform: domain %s has no instruction pool", spec.Name)
	}
	return &Domain{
		Spec:         spec,
		poweredCores: spec.TotalCores,
		clockHz:      spec.MaxClockHz,
		supplyVolts:  spec.PDN.VNominal,
		transfers:    make(map[transferKey]*pdn.TransferSet),
		spectra:      make(map[spectraKey]*list.Element),
		spectraOrder: list.New(),
	}, nil
}

// Pool returns the instruction pool for the domain's ISA.
func (s Spec) Pool() *isa.Pool { return isa.PoolFor(s.ISA) }

// VminStepVolts returns the supply-step granularity used in V_MIN searches
// on this domain (10 mV on the Juno rails, 12.5 mV on the AMD board).
func (s Spec) VminStepVolts() float64 {
	if s.ISA == isa.X86 {
		return 0.0125
	}
	return 0.010
}

// PoweredCores returns the number of powered (not power-gated) cores.
func (d *Domain) PoweredCores() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.poweredCores
}

// SetPoweredCores power-gates all but n cores (the SCP operation the paper
// drives through the DS-5 debugger).
func (d *Domain) SetPoweredCores(n int) error {
	if n < 1 || n > d.Spec.TotalCores {
		return fmt.Errorf("platform: %s: cannot power %d of %d cores", d.Spec.Name, n, d.Spec.TotalCores)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.poweredCores = n
	return nil
}

// ClockHz returns the current core clock.
func (d *Domain) ClockHz() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.clockHz
}

// SetClockHz sets the core clock, snapping to the domain's step size.
func (d *Domain) SetClockHz(hz float64) error {
	snapped, err := d.SnapClock(hz)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.clockHz = snapped
	return nil
}

// SnapClock validates a clock request and returns the setting the domain
// would actually run at (quantized to ClockStepHz), without changing any
// state. The stateless measurement paths (SpectraAt, SteadyResponseAt) take
// snapped clocks so concurrent sweeps never touch the shared clock setting.
func (d *Domain) SnapClock(hz float64) (float64, error) {
	if hz <= 0 || hz > d.Spec.MaxClockHz {
		return 0, fmt.Errorf("platform: %s: clock %v outside (0, %v]", d.Spec.Name, hz, d.Spec.MaxClockHz)
	}
	steps := math.Round(hz / d.Spec.ClockStepHz)
	if steps < 1 {
		steps = 1
	}
	return steps * d.Spec.ClockStepHz, nil
}

// ClockSteps lists the available clock settings from low to high.
func (d *Domain) ClockSteps() []float64 {
	return ClockStepsFor(d.Spec.ClockStepHz, d.Spec.MaxClockHz)
}

// ClockStepsFor enumerates the clock grid for a (step, max) pair. It is the
// single definition of the grid so a remote capability record (which carries
// only the two floats) reproduces a local Domain.ClockSteps bit-exactly.
func ClockStepsFor(stepHz, maxHz float64) []float64 {
	var out []float64
	for f := stepHz; f <= maxHz+1e-6; f += stepHz {
		out = append(out, f)
	}
	return out
}

// SupplyVolts returns the current supply setting.
func (d *Domain) SupplyVolts() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.supplyVolts
}

// SetSupplyVolts adjusts the regulator setpoint (the paper steps in 10 mV).
func (d *Domain) SetSupplyVolts(v float64) error {
	if v <= 0 || v > 2*d.Spec.PDN.VNominal {
		return fmt.Errorf("platform: %s: supply %v out of range", d.Spec.Name, v)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.supplyVolts = v
	return nil
}

// Reset returns the domain to nominal voltage, maximum clock and all cores
// powered.
func (d *Domain) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.poweredCores = d.Spec.TotalCores
	d.clockHz = d.Spec.MaxClockHz
	d.supplyVolts = d.Spec.PDN.VNominal
}

// Model returns the PDN model for the current powered-core count and
// supply setting.
func (d *Domain) Model() (*pdn.Model, error) {
	d.mu.Lock()
	cores, supply := d.poweredCores, d.supplyVolts
	d.mu.Unlock()
	return d.modelAt(cores, supply)
}

// modelAt builds the PDN model for an explicit powered-core count and
// supply setting, independent of the domain's mutable state.
func (d *Domain) modelAt(cores int, supply float64) (*pdn.Model, error) {
	p := d.Spec.PDN
	p.VNominal = supply
	return pdn.NewModel(p, cores)
}

// transferSet returns (building and caching as needed) the PDN transfer
// functions for the current domain state and the given sampling grid.
func (d *Domain) transferSet(n int, dt float64) (*pdn.TransferSet, error) {
	d.mu.Lock()
	cores, supply := d.poweredCores, d.supplyVolts
	d.mu.Unlock()
	return d.transferSetAt(cores, supply, n, dt)
}

// transferSetAt is transferSet for an explicit powered-core count. The
// cache key omits the supply (the transfers are supply-independent); under
// concurrent misses both goroutines build the same set and one copy wins.
func (d *Domain) transferSetAt(cores int, supply float64, n int, dt float64) (*pdn.TransferSet, error) {
	key := transferKey{cores: cores, n: n, dt: dt}
	d.mu.Lock()
	ts, ok := d.transfers[key]
	d.mu.Unlock()
	if ok {
		return ts, nil
	}

	m, err := d.modelAt(cores, supply)
	if err != nil {
		return nil, err
	}
	built, err := m.Transfers(n, dt)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	if ts, ok = d.transfers[key]; !ok {
		d.transfers[key] = built
		ts = built
	}
	d.mu.Unlock()
	return ts, nil
}

// SpectraCacheStats reports the spectra memo's hit/miss/eviction counters
// (logged by cmd/gahunt -v to make cache effectiveness observable).
func (d *Domain) SpectraCacheStats() (hits, misses, evictions uint64) {
	return d.spectraHits.Load(), d.spectraMisses.Load(), d.spectraEvictions.Load()
}

// SpectraCacheCap returns the domain's effective spectra-memo bound.
func (d *Domain) SpectraCacheCap() int {
	d.spectraMu.Lock()
	defer d.spectraMu.Unlock()
	return d.spectraCapLocked()
}

func (d *Domain) spectraCapLocked() int {
	if d.spectraCap > 0 {
		return d.spectraCap
	}
	return DefaultSpectraCacheCap
}

// SetSpectraCacheCap sets the spectra-memo bound for this domain; values
// below 1 restore the default. Shrinking evicts least-recently-used entries
// immediately — purity makes the eviction invisible to results.
func (d *Domain) SetSpectraCacheCap(n int) {
	d.spectraMu.Lock()
	defer d.spectraMu.Unlock()
	if n < 1 {
		n = 0
	}
	d.spectraCap = n
	d.evictSpectraLocked()
}

// EnsureSpectraCacheCap raises the spectra-memo bound to at least n,
// never lowering it. Campaign paths call it with their grid size, so a
// lattice larger than the configured cap cannot evict entries the same
// campaign is still consuming.
func (d *Domain) EnsureSpectraCacheCap(n int) {
	d.spectraMu.Lock()
	defer d.spectraMu.Unlock()
	if n > d.spectraCapLocked() {
		d.spectraCap = n
	}
}

// evictSpectraLocked trims the memo to the effective cap; the caller holds
// spectraMu.
func (d *Domain) evictSpectraLocked() {
	limit := d.spectraCapLocked()
	for len(d.spectra) > limit {
		back := d.spectraOrder.Back()
		d.spectraOrder.Remove(back)
		delete(d.spectra, back.Value.(*spectraNode).key)
		d.spectraEvictions.Add(1)
	}
}
