package platform

import (
	"fmt"

	"repro/internal/em"
	"repro/internal/isa"
	"repro/internal/pdn"
	"repro/internal/uarch"
)

// Platform is a board with one or more CPU voltage domains and one receiver
// antenna position (the paper places the loop antenna under the PCB where
// it picks up every domain simultaneously).
type Platform struct {
	Name    string
	Antenna em.Antenna

	domains map[string]*Domain
	order   []string
}

// NewPlatform assembles a platform from domain specs.
func NewPlatform(name string, antenna em.Antenna, specs ...Spec) (*Platform, error) {
	if err := antenna.Validate(); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("platform: %s has no domains", name)
	}
	p := &Platform{Name: name, Antenna: antenna, domains: make(map[string]*Domain)}
	for _, spec := range specs {
		if _, dup := p.domains[spec.Name]; dup {
			return nil, fmt.Errorf("platform: duplicate domain %q", spec.Name)
		}
		d, err := NewDomain(spec)
		if err != nil {
			return nil, err
		}
		p.domains[spec.Name] = d
		p.order = append(p.order, spec.Name)
	}
	return p, nil
}

// Domain returns the named voltage domain.
func (p *Platform) Domain(name string) (*Domain, error) {
	d, ok := p.domains[name]
	if !ok {
		return nil, fmt.Errorf("platform: %s has no domain %q", p.Name, name)
	}
	return d, nil
}

// Domains returns all domains in declaration order.
func (p *Platform) Domains() []*Domain {
	out := make([]*Domain, 0, len(p.order))
	for _, name := range p.order {
		out = append(out, p.domains[name])
	}
	return out
}

// Domain names on the built-in platforms.
const (
	DomainA72    = "cortex-a72"
	DomainA53    = "cortex-a53"
	DomainAthlon = "athlon-ii-x4"
)

// junoA72PDN is calibrated for a ~67 MHz first-order resonance with both
// cores powered and ~85 MHz with one (paper Figures 8 and 11).
func junoA72PDN() pdn.Params {
	return pdn.Params{
		Name:       "juno-a72",
		VNominal:   1.0,
		CDieCore:   12e-9,
		CDieUncore: 7.3e-9,
		RDie:       0.014,
		LPkg:       136.9e-12,
		RPkgTrace:  0.4e-3,
		CPkg:       1e-6,
		ESRPkg:     15e-3,
		ESLPkg:     50e-12,
		LPcb:       2e-9,
		RPcbTrace:  1e-3,
		CPcb:       300e-6,
		ESRPcb:     2e-3,
		ESLPcb:     1e-9,
		LVrm:       20e-9,
		RVrm:       0.5e-3,
	}
}

// junoA53PDN is calibrated for ~76.5 MHz with four cores and ~97 MHz with
// one (paper Figure 13).
func junoA53PDN() pdn.Params {
	p := junoA72PDN()
	p.Name = "juno-a53"
	p.CDieCore = 4e-9
	p.CDieUncore = 15.7e-9
	p.RDie = 0.012
	p.LPkg = 91.8e-12
	return p
}

// athlonPDN is calibrated for a ~78 MHz resonance with four cores (paper
// Figure 16). A 45nm desktop die has far more capacitance and a stiffer
// package.
func athlonPDN() pdn.Params {
	return pdn.Params{
		Name:       "athlon-ii",
		VNominal:   1.4,
		CDieCore:   10e-9,
		CDieUncore: 10e-9,
		RDie:       0.005,
		LPkg:       75.68e-12,
		RPkgTrace:  0.15e-3,
		CPkg:       4e-6,
		ESRPkg:     12e-3,
		ESLPkg:     8e-12,
		LPcb:       1.2e-9,
		RPcbTrace:  0.5e-3,
		CPcb:       1000e-6,
		ESRPcb:     1.5e-3,
		ESLPcb:     1e-9,
		LVrm:       12e-9,
		RVrm:       0.3e-3,
	}
}

// JunoR2 builds the ARM Juno R2 big.LITTLE platform of Table 1.
func JunoR2() (*Platform, error) {
	a72 := Spec{
		Name:              DomainA72,
		Board:             "Juno Board R2",
		ISA:               isa.ARM64,
		PDN:               junoA72PDN(),
		Core:              uarch.CortexA72(),
		TotalCores:        2,
		MaxClockHz:        1.2e9,
		ClockStepHz:       20e6,
		VoltageVisibility: "oc-dso",
		EMPath:            em.Path{DistanceM: 0.07, CouplingK: 1e-5, RefHz: 100e6, RefDistanceM: 0.07},
		Failure:           FailureParams{VCritAtMax: 0.739, SlackPerHz: 1.0e-10, SDCBand: 0.010},
		TechNode:          16,
		OS:                "Debian (4.4.0-135-arm64)",
	}
	a53 := Spec{
		Name:              DomainA53,
		Board:             "Juno Board R2",
		ISA:               isa.ARM64,
		PDN:               junoA53PDN(),
		Core:              uarch.CortexA53(),
		TotalCores:        4,
		MaxClockHz:        0.95e9,
		ClockStepHz:       25e6,
		VoltageVisibility: "none",
		EMPath:            em.Path{DistanceM: 0.07, CouplingK: 0.8e-5, RefHz: 100e6, RefDistanceM: 0.07},
		Failure:           FailureParams{VCritAtMax: 0.788, SlackPerHz: 1.0e-10, SDCBand: 0.010},
		TechNode:          16,
		OS:                "Debian (4.4.0-135-arm64)",
	}
	return NewPlatform("juno-r2", em.DefaultLoopAntenna(), a72, a53)
}

// AMDDesktop builds the Athlon II X4 645 desktop platform of Table 1.
func AMDDesktop() (*Platform, error) {
	athlon := Spec{
		Name:              DomainAthlon,
		Board:             "Asus M5A78L LE",
		ISA:               isa.X86,
		PDN:               athlonPDN(),
		Core:              uarch.AthlonII(),
		TotalCores:        4,
		MaxClockHz:        3.1e9,
		ClockStepHz:       100e6,
		VoltageVisibility: "kelvin-pads",
		EMPath:            em.Path{DistanceM: 0.07, CouplingK: 2e-5, RefHz: 100e6, RefDistanceM: 0.07},
		Failure:           FailureParams{VCritAtMax: 1.187, SlackPerHz: 2.0e-11, SDCBand: 0.0125},
		TechNode:          45,
		OS:                "Windows 8.1",
	}
	return NewPlatform("amd-desktop", em.DefaultLoopAntenna(), athlon)
}

// VminStepVolts returns the supply-step granularity used in V_MIN searches
// on this domain (10 mV on the Juno rails, 12.5 mV on the AMD board).
func (s Spec) VminStepVolts() float64 {
	if s.ISA == isa.X86 {
		return 0.0125
	}
	return 0.010
}
