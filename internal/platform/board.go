package platform

import (
	"fmt"

	"repro/internal/em"
)

// Platform is a board with one or more CPU voltage domains and one receiver
// antenna position (the paper places the loop antenna under the PCB where
// it picks up every domain simultaneously).
type Platform struct {
	Name    string
	Antenna em.Antenna

	domains map[string]*Domain
	order   []string
}

// NewPlatform assembles a platform from domain specs.
func NewPlatform(name string, antenna em.Antenna, specs ...Spec) (*Platform, error) {
	if err := antenna.Validate(); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("platform: %s has no domains", name)
	}
	p := &Platform{Name: name, Antenna: antenna, domains: make(map[string]*Domain)}
	for _, spec := range specs {
		if _, dup := p.domains[spec.Name]; dup {
			return nil, fmt.Errorf("platform: duplicate domain %q", spec.Name)
		}
		d, err := NewDomain(spec)
		if err != nil {
			return nil, err
		}
		p.domains[spec.Name] = d
		p.order = append(p.order, spec.Name)
	}
	return p, nil
}

// Domain returns the named voltage domain.
func (p *Platform) Domain(name string) (*Domain, error) {
	d, ok := p.domains[name]
	if !ok {
		return nil, fmt.Errorf("platform: %s has no domain %q", p.Name, name)
	}
	return d, nil
}

// Domains returns all domains in declaration order.
func (p *Platform) Domains() []*Domain {
	out := make([]*Domain, 0, len(p.order))
	for _, name := range p.order {
		out = append(out, p.domains[name])
	}
	return out
}
