// Package prof wires the standard pprof profilers into the command-line
// tools, so performance work can measure the real hot paths instead of
// guessing. Usage:
//
//	stop, err := prof.Start(*cpuprofile, *memprofile)
//	if err != nil { ... }
//	defer stop()
//
// Either path may be empty to skip that profile. The CPU profile records
// from Start until stop; the heap profile is written at stop time (after a
// GC, so it reflects live allocations).
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and arranges for a
// heap profile at stop time to memPath (if non-empty). The returned stop
// function flushes and closes the profiles; it is safe to call exactly once
// and is never nil.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			runtime.GC() // materialize live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "prof: write heap profile:", err)
			}
			f.Close()
		}
	}, nil
}
