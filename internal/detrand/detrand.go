// Package detrand derives deterministic, order-independent random streams
// from request content. The simulated instruments draw their measurement
// noise from streams seeded by (instrument seed, content hash of the
// request) rather than from one shared generator, so the noise a
// measurement sees depends only on what is being measured — never on how
// many measurements ran before it or on which goroutine issued it. That is
// the property that lets the GA evaluate a whole population concurrently
// and still produce bit-identical results at any parallelism setting.
package detrand

import (
	"math"
	"math/rand"
	"sync"
)

// FNV-1a 64-bit parameters (the offset seeds the fold; the prime is the
// per-word multiplier).
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Hash accumulates a 64-bit content hash: an FNV-style multiply-xor fold
// applied per 64-bit word, with a downward xor-shift so high-order input
// bits (float exponents, sign bits) diffuse into the low half between
// words. One word costs three ALU ops instead of the byte-serial eight
// rounds of textbook FNV — the fold sits on the measurement hot path,
// where every analyzer request hashes its full watts spectrum.
type Hash struct {
	sum uint64
}

// NewHash returns an empty content hash.
func NewHash() *Hash { return &Hash{sum: fnvOffset} }

// Uint64 folds an 8-byte value into the hash.
func (h *Hash) Uint64(v uint64) {
	s := (h.sum ^ v) * fnvPrime
	h.sum = s ^ (s >> 29)
}

// Int folds an integer into the hash.
func (h *Hash) Int(v int) { h.Uint64(uint64(int64(v))) }

// Float64 folds the IEEE-754 bits of f into the hash. Note that +0 and -0
// hash differently; callers that care should normalize first.
func (h *Hash) Float64(f float64) { h.Uint64(math.Float64bits(f)) }

// Floats folds a slice length and every element into the hash.
func (h *Hash) Floats(xs []float64) {
	h.Int(len(xs))
	for _, x := range xs {
		h.Float64(x)
	}
}

// String folds a length-prefixed string into the hash.
func (h *Hash) String(s string) {
	h.Int(len(s))
	for i := 0; i < len(s); i++ {
		h.sum = (h.sum ^ uint64(s[i])) * fnvPrime
	}
}

// Sum returns the accumulated hash.
func (h *Hash) Sum() uint64 { return h.sum }

// HashFloats hashes one or more float slices in one call.
func HashFloats(parts ...[]float64) uint64 {
	h := NewHash()
	for _, p := range parts {
		h.Floats(p)
	}
	return h.Sum()
}

// HashFloatsFrom is HashFloats resuming from a saved intermediate state
// (a Sum taken part-way through the fold): HashFloats(a, b) equals
// HashFloatsFrom(HashFloats(a), b). Hot paths use it with GridState to
// skip re-folding a shared, immutable prefix on every call.
func HashFloatsFrom(state uint64, parts ...[]float64) uint64 {
	h := Hash{sum: state}
	for _, p := range parts {
		h.Floats(p)
	}
	return h.Sum()
}

// gridKey identifies an immutable float slice by backing-array identity.
// Holding the pointer in the key pins the array, so a recycled allocation
// can never alias a stale entry.
type gridKey struct {
	ptr *float64
	n   int
}

var gridStates sync.Map // gridKey -> uint64

// GridState returns the hash state after folding xs into a fresh hash,
// memoized per backing array. It is meant for long-lived, read-only grids
// (frequency axes of cached transfer sets) that prefix many request hashes;
// mutating a slice after passing it here is a bug.
func GridState(xs []float64) uint64 {
	if len(xs) == 0 {
		return HashFloats(xs)
	}
	key := gridKey{ptr: &xs[0], n: len(xs)}
	if v, ok := gridStates.Load(key); ok {
		return v.(uint64)
	}
	state := HashFloats(xs)
	gridStates.Store(key, state)
	return state
}

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler that turns
// structured inputs (seed, content hash, small indices) into well-spread
// seeds, so nearby requests get decorrelated streams.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// splitmixSource is a splitmix64 generator behind the math/rand interface.
// Seeding is a single store — unlike the stdlib lagged-Fibonacci source,
// whose ~600-round reseed dominated the cost of the per-sample noise
// streams the instruments request — and the output feeds rand.Rand's usual
// derivations (Float64, NormFloat64) through the Source64 fast path.
type splitmixSource struct{ s uint64 }

func (src *splitmixSource) Uint64() uint64 {
	src.s += 0x9e3779b97f4a7c15
	z := src.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (src *splitmixSource) Int63() int64 { return int64(src.Uint64() >> 1) }

func (src *splitmixSource) Seed(seed int64) { src.s = uint64(seed) }

// Stream returns a deterministic random stream derived from the seed and
// the given parts (typically a content hash plus a sample index). The same
// inputs always produce the same stream, on any goroutine, in any order.
func Stream(seed int64, parts ...uint64) *rand.Rand {
	return rand.New(&splitmixSource{s: uint64(streamSeed(seed, parts))})
}

func streamSeed(seed int64, parts []uint64) int64 {
	x := mix64(uint64(seed))
	for _, p := range parts {
		x = mix64(x ^ p)
	}
	return int64(x)
}

// rngPool recycles generators between PooledStream calls; a reseed
// reinitializes the source exactly as a fresh Stream does, so a pooled
// stream is bit-identical to Stream with the same inputs.
var rngPool = sync.Pool{New: func() any { return rand.New(&splitmixSource{}) }}

// PooledStream is Stream drawing the generator from a pool, for hot loops
// that would otherwise allocate the generator on every request. Hand the
// stream back with Recycle when done; never use it afterwards.
func PooledStream(seed int64, parts ...uint64) *rand.Rand {
	r := rngPool.Get().(*rand.Rand)
	r.Seed(streamSeed(seed, parts))
	return r
}

// Recycle returns a PooledStream generator to the pool.
func Recycle(r *rand.Rand) {
	if r != nil {
		rngPool.Put(r)
	}
}
