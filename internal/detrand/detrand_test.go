package detrand

import "testing"

func TestHashDeterministicAndContentSensitive(t *testing.T) {
	h1 := NewHash()
	h1.Float64(1.5)
	h1.Floats([]float64{1, 2, 3})
	h1.String("abc")
	h2 := NewHash()
	h2.Float64(1.5)
	h2.Floats([]float64{1, 2, 3})
	h2.String("abc")
	if h1.Sum() != h2.Sum() {
		t.Fatal("identical content hashed differently")
	}
	h3 := NewHash()
	h3.Float64(1.5)
	h3.Floats([]float64{1, 2, 4})
	h3.String("abc")
	if h1.Sum() == h3.Sum() {
		t.Fatal("different content collided")
	}
}

func TestHashLengthPrefixing(t *testing.T) {
	// [1,2]+[3] and [1]+[2,3] carry the same elements; the length prefixes
	// must keep them distinct.
	if HashFloats([]float64{1, 2}, []float64{3}) == HashFloats([]float64{1}, []float64{2, 3}) {
		t.Fatal("slice boundaries not hashed")
	}
	if HashFloats(nil) == HashFloats([]float64{}, []float64{}) {
		t.Fatal("empty-slice counts not hashed")
	}
}

func TestStreamReproducible(t *testing.T) {
	a := Stream(7, 123, 0)
	b := Stream(7, 123, 0)
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same inputs gave different streams")
		}
	}
}

func TestStreamDecorrelated(t *testing.T) {
	// Different seeds, hashes or sample indices must give different draws.
	base := Stream(7, 123, 0).Float64()
	if Stream(8, 123, 0).Float64() == base {
		t.Error("seed ignored")
	}
	if Stream(7, 124, 0).Float64() == base {
		t.Error("content hash ignored")
	}
	if Stream(7, 123, 1).Float64() == base {
		t.Error("sample index ignored")
	}
}
