package ga

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/isa"
)

// batchSpy is a BatchMeasurer that records routing: every batch call and
// every scalar call, scoring with the shared synthetic objective so Run's
// results are comparable with the plain MeasurerFunc path.
type batchSpy struct {
	batches      int
	batchItems   int
	lineageHints int
	scalarCalls  int
	short        bool // return one result too few, to exercise validation
	err          error
}

func (s *batchSpy) Measure(seq []isa.Inst) (float64, float64, error) {
	s.scalarCalls++
	return countSIMD(seq)
}

func (s *batchSpy) MeasureBatch(items []BatchItem, parallelism int) ([]BatchResult, error) {
	if s.err != nil {
		return nil, s.err
	}
	s.batches++
	s.batchItems += len(items)
	results := make([]BatchResult, len(items))
	for i, it := range items {
		if it.Lin != nil {
			s.lineageHints++
		}
		fit, dom, err := countSIMD(it.Seq)
		if err != nil {
			return nil, err
		}
		results[i] = BatchResult{Fitness: fit, DominantHz: dom}
	}
	if s.short {
		results = results[:len(results)-1]
	}
	return results, nil
}

// TestRunPrefersBatchMeasurer checks measureAll's routing: a BatchMeasurer
// gets one MeasureBatch call per generation covering every individual
// (including lineage-carrying bred children), never a scalar call, and the
// run's outcome matches the scalar path bit-for-bit.
func TestRunPrefersBatchMeasurer(t *testing.T) {
	cfg := testConfig()
	spy := &batchSpy{}
	batched, err := Run(cfg, spy, nil)
	if err != nil {
		t.Fatal(err)
	}
	if spy.scalarCalls != 0 {
		t.Errorf("%d scalar Measure calls despite MeasureBatch", spy.scalarCalls)
	}
	wantBatches := cfg.Generations // one full-population batch per generation
	if spy.batches != wantBatches {
		t.Errorf("MeasureBatch called %d times, want %d", spy.batches, wantBatches)
	}
	if want := wantBatches * cfg.PopulationSize; spy.batchItems != want {
		t.Errorf("batched %d individuals, want %d", spy.batchItems, want)
	}
	if spy.lineageHints == 0 {
		t.Error("no batch item carried a breeding lineage hint")
	}

	scalar, err := Run(cfg, MeasurerFunc(countSIMD), nil)
	if err != nil {
		t.Fatal(err)
	}
	if batched.Best.Fitness != scalar.Best.Fitness || batched.Best.DominantHz != scalar.Best.DominantHz {
		t.Errorf("batch best %+v differs from scalar best %+v", batched.Best, scalar.Best)
	}
	for g := range scalar.History {
		bh, sh := batched.History[g], scalar.History[g]
		if bh.BestFitness != sh.BestFitness || bh.MeanFitness != sh.MeanFitness ||
			bh.BestDominant != sh.BestDominant {
			t.Fatalf("generation %d stats differ: batch %+v scalar %+v", g, bh, sh)
		}
	}
}

// TestBatchMeasurerShortResultRejected checks a result-count mismatch is a
// hard error, not silent truncation.
func TestBatchMeasurerShortResultRejected(t *testing.T) {
	_, err := Run(testConfig(), &batchSpy{short: true}, nil)
	if err == nil || !strings.Contains(err.Error(), "results") {
		t.Fatalf("err = %v, want result-count mismatch", err)
	}
}

// TestBatchMeasurerErrorPropagates checks MeasureBatch failures surface
// like scalar measurement failures do.
func TestBatchMeasurerErrorPropagates(t *testing.T) {
	boom := errors.New("rig offline")
	if _, err := Run(testConfig(), &batchSpy{err: boom}, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped rig error", err)
	}
}

// TestEvaluatePopulationBatchAndScalar checks the exported stepper feeds
// both paths: results land in place and the batch path is preferred.
func TestEvaluatePopulationBatchAndScalar(t *testing.T) {
	pool := isa.ARM64Pool()
	defOf := func(class isa.Class) *isa.Def {
		for i := range pool.Defs {
			if pool.Defs[i].Class == class {
				return &pool.Defs[i]
			}
		}
		t.Fatalf("pool has no %v instruction", class)
		return nil
	}
	mk := func() []Individual {
		pop := make([]Individual, 6)
		for i := range pop {
			// Deterministic mix: even individuals all-SIMD, odd all-integer.
			def := defOf(isa.SIMD)
			if i%2 == 1 {
				def = defOf(isa.IntShort)
			}
			seq := make([]isa.Inst, 8)
			for j := range seq {
				seq[j] = isa.Inst{Def: def}
			}
			pop[i] = Individual{Seq: seq}
		}
		return pop
	}
	spy := &batchSpy{}
	viaBatch := mk()
	if err := EvaluatePopulation(viaBatch, spy, 4); err != nil {
		t.Fatal(err)
	}
	if spy.batches != 1 || spy.scalarCalls != 0 {
		t.Fatalf("batch routing: %d batches, %d scalar calls", spy.batches, spy.scalarCalls)
	}
	viaScalar := mk()
	if err := EvaluatePopulation(viaScalar, MeasurerFunc(countSIMD), 4); err != nil {
		t.Fatal(err)
	}
	for i := range viaBatch {
		if viaBatch[i].Fitness != viaScalar[i].Fitness {
			t.Errorf("individual %d: batch fitness %v, scalar %v",
				i, viaBatch[i].Fitness, viaScalar[i].Fitness)
		}
		want := 1.0
		if i%2 == 1 {
			want = 0
		}
		if viaBatch[i].Fitness != want {
			t.Errorf("individual %d: fitness %v, want %v", i, viaBatch[i].Fitness, want)
		}
	}
}
