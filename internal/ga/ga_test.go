package ga

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// countSIMD scores an individual by its SIMD fraction — an easy synthetic
// objective the GA must maximize.
func countSIMD(seq []isa.Inst) (float64, float64, error) {
	n := 0.0
	for _, in := range seq {
		if in.Def.Class == isa.SIMD {
			n++
		}
	}
	return n / float64(len(seq)), 42e6, nil
}

func testConfig() Config {
	cfg := DefaultConfig(isa.ARM64Pool())
	cfg.PopulationSize = 20
	cfg.Generations = 25
	cfg.SeqLen = 30
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(isa.ARM64Pool()).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Pool = nil },
		func(c *Config) { c.PopulationSize = 1 },
		func(c *Config) { c.Generations = 0 },
		func(c *Config) { c.SeqLen = 0 },
		func(c *Config) { c.MutationRate = -0.1 },
		func(c *Config) { c.MutationRate = 1.5 },
		func(c *Config) { c.TournamentSize = 0 },
		func(c *Config) { c.TournamentSize = 1000 },
		func(c *Config) { c.Elites = -1 },
		func(c *Config) { c.Elites = 50 },
		func(c *Config) { c.InitialPopulation = make([][]isa.Inst, 100) },
		func(c *Config) { c.InitialPopulation = [][]isa.Inst{make([]isa.Inst, 3)} },
		func(c *Config) { c.Parallelism = -1 },
	}
	for i, mut := range mutations {
		cfg := DefaultConfig(isa.ARM64Pool())
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRunRejectsNilMeasurer(t *testing.T) {
	if _, err := Run(testConfig(), nil, nil); err == nil {
		t.Fatal("nil measurer accepted")
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := testConfig()
	cfg.PopulationSize = 0
	if _, err := Run(cfg, MeasurerFunc(countSIMD), nil); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunPropagatesMeasureError(t *testing.T) {
	boom := errors.New("instrument offline")
	m := MeasurerFunc(func([]isa.Inst) (float64, float64, error) { return 0, 0, boom })
	if _, err := Run(testConfig(), m, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped instrument error", err)
	}
}

func TestGAOptimizesSyntheticObjective(t *testing.T) {
	res, err := Run(testConfig(), MeasurerFunc(countSIMD), nil)
	if err != nil {
		t.Fatal(err)
	}
	first := res.History[0].BestFitness
	last := res.History[len(res.History)-1].BestFitness
	if last <= first {
		t.Fatalf("GA did not improve: %v -> %v", first, last)
	}
	if res.Best.Fitness < 0.7 {
		t.Fatalf("GA plateaued at %v SIMD fraction, want > 0.7", res.Best.Fitness)
	}
	if res.Best.DominantHz != 42e6 {
		t.Fatalf("dominant frequency not recorded: %v", res.Best.DominantHz)
	}
}

func TestHistoryShape(t *testing.T) {
	cfg := testConfig()
	cfg.Generations = 7
	res, err := Run(cfg, MeasurerFunc(countSIMD), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 7 {
		t.Fatalf("history length %d", len(res.History))
	}
	for i, g := range res.History {
		if g.Gen != i {
			t.Fatalf("generation %d numbered %d", i, g.Gen)
		}
		if g.MeanFitness > g.BestFitness {
			t.Fatalf("gen %d mean %v > best %v", i, g.MeanFitness, g.BestFitness)
		}
		if len(g.Best.Seq) != cfg.SeqLen {
			t.Fatalf("gen %d best has %d instructions", i, len(g.Best.Seq))
		}
	}
}

func TestProgressCallback(t *testing.T) {
	cfg := testConfig()
	cfg.Generations = 5
	var calls int
	_, err := Run(cfg, MeasurerFunc(countSIMD), func(GenerationStats) { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Fatalf("progress called %d times", calls)
	}
}

func TestBestNeverRegressesWithElitism(t *testing.T) {
	// With a deterministic measurer and elitism, the per-generation best
	// fitness must be monotone non-decreasing.
	cfg := testConfig()
	cfg.Elites = 2
	res, err := Run(cfg, MeasurerFunc(countSIMD), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i].BestFitness < res.History[i-1].BestFitness-1e-12 {
			t.Fatalf("best regressed at generation %d: %v -> %v",
				i, res.History[i-1].BestFitness, res.History[i].BestFitness)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	cfg := testConfig() // shared pool: Def pointers must match across runs
	run := func() *Result {
		res, err := Run(cfg, MeasurerFunc(countSIMD), nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Best.Fitness != b.Best.Fitness {
		t.Fatalf("same seed gave different best fitness: %v vs %v", a.Best.Fitness, b.Best.Fitness)
	}
	for i := range a.History {
		if a.History[i].BestFitness != b.History[i].BestFitness {
			t.Fatalf("histories diverge at generation %d", i)
		}
	}
	for i := range a.Best.Seq {
		if a.Best.Seq[i] != b.Best.Seq[i] {
			t.Fatalf("best sequences differ at %d", i)
		}
	}
}

func TestInitialPopulationSeedsRun(t *testing.T) {
	pool := isa.ARM64Pool()
	vmul, _ := pool.DefByMnemonic("vmul")
	perfect := make([]isa.Inst, 30)
	for i := range perfect {
		perfect[i] = isa.Inst{Def: vmul}
	}
	cfg := testConfig()
	cfg.Generations = 1
	cfg.InitialPopulation = [][]isa.Inst{perfect}
	res, err := Run(cfg, MeasurerFunc(countSIMD), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Fitness != 1.0 {
		t.Fatalf("seeded individual lost: best fitness %v", res.Best.Fitness)
	}
}

// Property: crossover children take every gene from one of the parents.
func TestCrossoverGenesComeFromParents(t *testing.T) {
	pool := isa.ARM64Pool()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		a := pool.RandomSequence(rng, n)
		b := pool.RandomSequence(rng, n)
		child := crossover(rng, a, b)
		if len(child) != n {
			return false
		}
		for i := range child {
			if child[i] != a[i] && child[i] != b[i] {
				return false
			}
		}
		// One-point: prefix from a, suffix from b.
		boundary := 0
		for boundary < n && child[boundary] == a[boundary] {
			boundary++
		}
		for i := boundary; i < n; i++ {
			if child[i] != b[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: mutation at rate 0 is the identity; at rate 1 sequences stay
// valid (definitions from the pool, operands in range).
func TestMutationRateProperty(t *testing.T) {
	pool := isa.ARM64Pool()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := pool.RandomSequence(rng, 20)
		orig := make([]isa.Inst, len(seq))
		copy(orig, seq)

		cfg := DefaultConfig(pool)
		cfg.MutationRate = 0
		mutate(cfg, rng, seq)
		for i := range seq {
			if seq[i] != orig[i] {
				return false
			}
		}
		cfg.MutationRate = 1
		mutate(cfg, rng, seq)
		for _, in := range seq {
			if in.Def == nil {
				return false
			}
			if _, ok := pool.DefByMnemonic(in.Def.Mnemonic); !ok {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(43))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestElites(t *testing.T) {
	pop := []Individual{
		{Fitness: 1}, {Fitness: 5}, {Fitness: 3}, {Fitness: 4},
	}
	top := elites(pop, 2)
	if len(top) != 2 || top[0].Fitness != 5 || top[1].Fitness != 4 {
		t.Fatalf("elites = %+v", top)
	}
	if elites(pop, 0) != nil {
		t.Fatal("elites(0) not nil")
	}
}
