package ga

import (
	"math/rand"

	"repro/internal/isa"
)

// BatchItem is one individual in a generation-batched measurement request:
// the sequence plus its breeding lineage when known (nil for gen-0
// individuals, elites and clones, mirroring the LineageMeasurer routing).
type BatchItem struct {
	Seq []isa.Inst
	Lin *Lineage
}

// BatchResult is the measured outcome for the same-index BatchItem.
type BatchResult struct {
	Fitness    float64
	DominantHz float64
}

// BatchMeasurer is a Measurer that can evaluate an entire generation in one
// call — deduplicating identical post-mutation children, sharing slab
// scratch across the batch, and bounding its own parallelism. MeasureBatch
// must return one result per item, each bit-identical to what Measure (or
// MeasureLineage with the same hint) would return for that sequence at any
// parallelism value; the GA prefers this path when the measurer offers it.
type BatchMeasurer interface {
	Measurer
	MeasureBatch(items []BatchItem, parallelism int) ([]BatchResult, error)
}

// EvaluatePopulation measures a population in place exactly the way Run
// does between generations: through MeasureBatch when the measurer is a
// BatchMeasurer, otherwise per individual (with lineage routing) on up to
// parallelism workers. Exposed for drivers and benchmarks that step
// generations manually.
func EvaluatePopulation(pop []Individual, m Measurer, parallelism int) error {
	return measureAll(pop, m, parallelism)
}

// NextGeneration breeds the successor of a measured population using cfg's
// operators (cfg must be valid). Exposed alongside EvaluatePopulation for
// manual generation stepping; Run is the composition of the two.
func NextGeneration(cfg Config, rng *rand.Rand, pop []Individual) []Individual {
	return nextGeneration(cfg, rng, pop)
}
