package ga

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestSelectionAndCrossoverStrings(t *testing.T) {
	cases := map[string]string{
		Tournament.String():    "tournament",
		Truncation.String():    "truncation",
		Roulette.String():      "roulette",
		OnePoint.String():      "one-point",
		TwoPoint.String():      "two-point",
		Uniform.String():       "uniform",
		Selection(99).String(): "selection(99)",
		Crossover(99).String(): "crossover(99)",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("got %q, want %q", got, want)
		}
	}
}

func TestConfigRejectsUnknownOperators(t *testing.T) {
	cfg := DefaultConfig(isa.ARM64Pool())
	cfg.Selection = Selection(9)
	if err := cfg.Validate(); err == nil {
		t.Error("unknown selection accepted")
	}
	cfg = DefaultConfig(isa.ARM64Pool())
	cfg.Crossover = Crossover(9)
	if err := cfg.Validate(); err == nil {
		t.Error("unknown crossover accepted")
	}
}

func TestRankIndices(t *testing.T) {
	pop := []Individual{{Fitness: 2}, {Fitness: 9}, {Fitness: 5}}
	ranked := rankIndices(pop)
	if ranked[0] != 1 || ranked[1] != 2 || ranked[2] != 0 {
		t.Fatalf("ranked = %v", ranked)
	}
}

func TestAllOperatorCombinationsOptimize(t *testing.T) {
	for _, sel := range []Selection{Tournament, Truncation, Roulette} {
		for _, cx := range []Crossover{OnePoint, TwoPoint, Uniform} {
			name := sel.String() + "/" + cx.String()
			t.Run(strings.ReplaceAll(name, "/", "_"), func(t *testing.T) {
				cfg := testConfig()
				cfg.Selection = sel
				cfg.Crossover = cx
				res, err := Run(cfg, MeasurerFunc(countSIMD), nil)
				if err != nil {
					t.Fatal(err)
				}
				first := res.History[0].BestFitness
				last := res.History[len(res.History)-1].BestFitness
				if last <= first {
					t.Errorf("%s did not improve: %v -> %v", name, first, last)
				}
			})
		}
	}
}

// Property: every crossover scheme produces children whose genes come from
// one of the two parents, preserving length.
func TestRecombineGenesFromParentsProperty(t *testing.T) {
	pool := isa.ARM64Pool()
	prop := func(seed int64, scheme uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		a := pool.RandomSequence(rng, n)
		b := pool.RandomSequence(rng, n)
		cfg := DefaultConfig(pool)
		cfg.Crossover = Crossover(int(scheme) % 3)
		child := recombine(cfg, rng, a, b)
		if len(child) != n {
			return false
		}
		for i := range child {
			if child[i] != a[i] && child[i] != b[i] {
				return false
			}
		}
		return true
	}
	qc := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(51))}
	if err := quick.Check(prop, qc); err != nil {
		t.Fatal(err)
	}
}

// Property: selection always returns a member of the population, and
// truncation never returns one from the bottom half.
func TestSelectParentProperty(t *testing.T) {
	pool := isa.ARM64Pool()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(20)
		pop := make([]Individual, n)
		for i := range pop {
			pop[i] = Individual{
				Seq:     pool.RandomSequence(rng, 5),
				Fitness: rng.Float64(),
			}
		}
		ranked := rankIndices(pop)
		for _, sel := range []Selection{Tournament, Truncation, Roulette} {
			cfg := DefaultConfig(pool)
			cfg.Selection = sel
			seq := selectParent(cfg, rng, pop, ranked)
			found := -1
			for i := range pop {
				if &pop[i].Seq[0] == &seq[0] {
					found = i
					break
				}
			}
			if found < 0 {
				return false
			}
			if sel == Truncation {
				// Must be in the top quarter by fitness.
				rank := -1
				for r, idx := range ranked {
					if idx == found {
						rank = r
						break
					}
				}
				top := len(ranked) / 4
				if top < 1 {
					top = 1
				}
				if rank >= top {
					return false
				}
			}
		}
		return true
	}
	qc := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(53))}
	if err := quick.Check(prop, qc); err != nil {
		t.Fatal(err)
	}
}
