// Package ga implements the paper's genetic-algorithm stress-test
// generation framework (Section 3): individuals are fixed-length assembly
// instruction sequences, fitness is supplied by a pluggable Measurer (EM
// peak amplitude for the paper's main methodology, direct voltage droop or
// peak-to-peak for the validation runs), and evolution uses tournament
// selection, one-point crossover and instruction/operand mutation.
package ga

import (
	"fmt"
	"math/rand"

	"repro/internal/detrand"
	"repro/internal/isa"
	"repro/internal/par"
)

// Measurer evaluates one candidate stress loop. Higher fitness is better.
// The dominant frequency is whatever the instrument reports as the
// strongest spectral component (recorded per generation, Figure 7's right
// axis).
type Measurer interface {
	Measure(seq []isa.Inst) (fitness, dominantHz float64, err error)
}

// MeasurerFunc adapts a function to the Measurer interface.
type MeasurerFunc func(seq []isa.Inst) (float64, float64, error)

// Measure implements Measurer.
func (f MeasurerFunc) Measure(seq []isa.Inst) (float64, float64, error) { return f(seq) }

// Lineage records how a bred child relates to its first parent: the child
// is verbatim-identical to that parent up to index Diverge (exactly —
// child[Diverge] differs unless the whole child is a copy). Parent is a
// content hash of the parent's sequence. Measurement backends use the
// lineage to skip re-simulating the shared prefix; it is a hint only and
// can never change measured values.
type Lineage struct {
	Parent  uint64
	Diverge int
}

// LineageMeasurer is a Measurer that can exploit breeding lineage. The GA
// detects it and routes bred individuals through MeasureLineage; gen-0
// individuals, elites and plain Measurers keep the Measure path. Both
// methods must return identical values for the same sequence.
type LineageMeasurer interface {
	Measurer
	MeasureLineage(seq []isa.Inst, lin *Lineage) (fitness, dominantHz float64, err error)
}

// Config holds the GA hyper-parameters. The defaults in DefaultConfig are
// the paper's empirically chosen values.
type Config struct {
	Pool           *isa.Pool
	PopulationSize int     // individuals per generation (paper: 50)
	Generations    int     // generations to run (paper: >= 60)
	SeqLen         int     // instructions per individual (paper: 50)
	MutationRate   float64 // per-gene mutation probability (paper: 2-4%)
	TournamentSize int     // tournament selection arity
	Elites         int     // best individuals copied unchanged
	// Selection and Crossover pick the breeding operators; the zero
	// values are the paper's tournament selection and one-point
	// crossover. The alternatives exist for the operator ablations.
	Selection Selection
	Crossover Crossover
	Seed      int64 // RNG seed (the GA itself is deterministic given
	// the seed and a deterministic Measurer)

	// Parallelism bounds the worker count for fitness evaluation: 0 or 1
	// evaluates serially, N > 1 uses up to N goroutines, and results are
	// collected by population index — so any setting yields bit-identical
	// Results as long as the Measurer is order-independent (the simulated
	// bench instruments are; see internal/detrand). The Measurer must also
	// be safe for concurrent use when Parallelism > 1: the local bench
	// measurers are, and remote measurement gets there via lab.Pool (one
	// pooled session per concurrent evaluation; see internal/lab).
	Parallelism int

	// InitialPopulation optionally seeds the first generation (a
	// population from a previous run, per Section 3.1); remaining slots
	// are filled randomly.
	InitialPopulation [][]isa.Inst
}

// DefaultConfig returns the paper's GA configuration for the given pool.
func DefaultConfig(pool *isa.Pool) Config {
	return Config{
		Pool:           pool,
		PopulationSize: 50,
		Generations:    60,
		SeqLen:         50,
		MutationRate:   0.03,
		TournamentSize: 3,
		Elites:         2,
		Seed:           1,
	}
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.Pool == nil:
		return fmt.Errorf("ga: nil instruction pool")
	case c.PopulationSize < 2:
		return fmt.Errorf("ga: population size %d", c.PopulationSize)
	case c.Generations < 1:
		return fmt.Errorf("ga: %d generations", c.Generations)
	case c.SeqLen < 1:
		return fmt.Errorf("ga: sequence length %d", c.SeqLen)
	case c.MutationRate < 0 || c.MutationRate > 1:
		return fmt.Errorf("ga: mutation rate %v", c.MutationRate)
	case c.TournamentSize < 1 || c.TournamentSize > c.PopulationSize:
		return fmt.Errorf("ga: tournament size %d", c.TournamentSize)
	case c.Elites < 0 || c.Elites >= c.PopulationSize:
		return fmt.Errorf("ga: %d elites with population %d", c.Elites, c.PopulationSize)
	case len(c.InitialPopulation) > c.PopulationSize:
		return fmt.Errorf("ga: initial population %d exceeds population size %d",
			len(c.InitialPopulation), c.PopulationSize)
	case c.Selection < Tournament || c.Selection > Roulette:
		return fmt.Errorf("ga: unknown selection scheme %d", c.Selection)
	case c.Crossover < OnePoint || c.Crossover > Uniform:
		return fmt.Errorf("ga: unknown crossover scheme %d", c.Crossover)
	case c.Parallelism < 0:
		return fmt.Errorf("ga: negative parallelism %d", c.Parallelism)
	}
	for i, seq := range c.InitialPopulation {
		if len(seq) != c.SeqLen {
			return fmt.Errorf("ga: initial individual %d has %d instructions, want %d",
				i, len(seq), c.SeqLen)
		}
	}
	return nil
}

// Individual is a candidate stress loop with its measured fitness.
type Individual struct {
	Seq        []isa.Inst
	Fitness    float64
	DominantHz float64

	// lin is the breeding lineage of a child produced by nextGeneration;
	// nil for gen-0 individuals, elites and clones.
	lin *Lineage
}

// clone deep-copies an individual's sequence.
func (in Individual) clone() Individual {
	seq := make([]isa.Inst, len(in.Seq))
	copy(seq, in.Seq)
	return Individual{Seq: seq, Fitness: in.Fitness, DominantHz: in.DominantHz}
}

// GenerationStats summarizes one generation (the per-generation series the
// paper plots in Figures 7, 12 and 17).
type GenerationStats struct {
	Gen          int
	BestFitness  float64
	MeanFitness  float64
	BestDominant float64
	Best         Individual
}

// Result is a finished GA run.
type Result struct {
	Best    Individual
	History []GenerationStats
	// FinalPopulation is the last generation with its measured fitness,
	// usable to seed a continuation run (Section 3.1) or an island model.
	FinalPopulation []Individual
}

// Run executes the GA. The optional progress callback receives each
// generation's statistics as it completes.
func Run(cfg Config, m Measurer, progress func(GenerationStats)) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("ga: nil measurer")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	pop := make([]Individual, cfg.PopulationSize)
	for i := range pop {
		if i < len(cfg.InitialPopulation) {
			seq := make([]isa.Inst, cfg.SeqLen)
			copy(seq, cfg.InitialPopulation[i])
			pop[i] = Individual{Seq: seq}
		} else {
			pop[i] = Individual{Seq: cfg.Pool.RandomSequence(rng, cfg.SeqLen)}
		}
	}

	res := &Result{}
	for gen := 0; gen < cfg.Generations; gen++ {
		if err := measureAll(pop, m, cfg.Parallelism); err != nil {
			return nil, fmt.Errorf("ga: generation %d: %w", gen, err)
		}
		stats := summarize(gen, pop)
		res.History = append(res.History, stats)
		if stats.Best.Fitness >= res.Best.Fitness || gen == 0 {
			res.Best = stats.Best.clone()
		}
		if progress != nil {
			progress(stats)
		}
		if gen == cfg.Generations-1 {
			break
		}
		pop = nextGeneration(cfg, rng, pop)
	}
	res.FinalPopulation = make([]Individual, len(pop))
	for i := range pop {
		res.FinalPopulation[i] = pop[i].clone()
	}
	return res, nil
}

// measureAll evaluates the population's fitness on up to parallelism
// workers. Each worker writes only its own index, and the instruments'
// noise is order-independent, so the measured population is identical at
// any worker count. Bred individuals carry their lineage to a
// LineageMeasurer so the backend can resume from the parent's prefix. A
// BatchMeasurer takes the whole generation in one call instead (dedup,
// slab scratch); its contract pins the results to the per-individual path.
func measureAll(pop []Individual, m Measurer, parallelism int) error {
	if bm, ok := m.(BatchMeasurer); ok {
		items := make([]BatchItem, len(pop))
		for i := range pop {
			items[i] = BatchItem{Seq: pop[i].Seq, Lin: pop[i].lin}
		}
		results, err := bm.MeasureBatch(items, parallelism)
		if err != nil {
			return err
		}
		if len(results) != len(pop) {
			return fmt.Errorf("ga: batch measurer returned %d results for %d individuals",
				len(results), len(pop))
		}
		for i := range pop {
			pop[i].Fitness = results[i].Fitness
			pop[i].DominantHz = results[i].DominantHz
		}
		return nil
	}
	lm, _ := m.(LineageMeasurer)
	return par.ForEach(parallelism, len(pop), func(i int) error {
		var fit, dom float64
		var err error
		if lm != nil && pop[i].lin != nil {
			fit, dom, err = lm.MeasureLineage(pop[i].Seq, pop[i].lin)
		} else {
			fit, dom, err = m.Measure(pop[i].Seq)
		}
		if err != nil {
			return err
		}
		pop[i].Fitness = fit
		pop[i].DominantHz = dom
		return nil
	})
}

func summarize(gen int, pop []Individual) GenerationStats {
	best := 0
	var sum float64
	for i := range pop {
		sum += pop[i].Fitness
		if pop[i].Fitness > pop[best].Fitness {
			best = i
		}
	}
	return GenerationStats{
		Gen:          gen,
		BestFitness:  pop[best].Fitness,
		MeanFitness:  sum / float64(len(pop)),
		BestDominant: pop[best].DominantHz,
		Best:         pop[best].clone(),
	}
}

// nextGeneration breeds a new population: elites survive unchanged, the
// rest are bred by tournament selection, one-point crossover and mutation.
func nextGeneration(cfg Config, rng *rand.Rand, pop []Individual) []Individual {
	next := make([]Individual, 0, cfg.PopulationSize)
	for _, e := range elites(pop, cfg.Elites) {
		next = append(next, e.clone())
	}
	// Only the rank-based selection schemes need the sorted index; the
	// default tournament path draws directly from the population, so the
	// per-generation sort is skipped for it (rankIndices never touches the
	// rng, so laziness cannot shift any random draw).
	var ranked []int
	if cfg.Selection == Truncation || cfg.Selection == Roulette {
		ranked = rankIndices(pop)
	}
	for len(next) < cfg.PopulationSize {
		a := selectParent(cfg, rng, pop, ranked)
		b := selectParent(cfg, rng, pop, ranked)
		child := recombine(cfg, rng, a, b)
		mutate(cfg, rng, child)
		next = append(next, Individual{Seq: child, lin: lineageOf(a, child)})
	}
	return next
}

// lineageOf records how a bred child relates to its first parent. Every
// crossover scheme copies parent a verbatim up to some point and mutation
// only ever rewrites genes in place, so the first index where the child
// differs from a is an exact shared-prefix length — computed by comparison,
// never inferred from operator internals.
func lineageOf(parent, child []isa.Inst) *Lineage {
	div := 0
	for div < len(child) && div < len(parent) && sameInst(parent[div], child[div]) {
		div++
	}
	return &Lineage{Parent: seqHash(parent), Diverge: div}
}

// sameInst reports whether two instructions are identical in content.
func sameInst(a, b isa.Inst) bool {
	if a.Dest != b.Dest || a.Srcs != b.Srcs || a.Addr != b.Addr {
		return false
	}
	return a.Def == b.Def || *a.Def == *b.Def
}

// seqHash is a content hash of an instruction sequence, identifying the
// parent in Lineage records.
func seqHash(seq []isa.Inst) uint64 {
	h := detrand.NewHash()
	h.Int(len(seq))
	for _, in := range seq {
		h.String(in.Def.Mnemonic)
		h.Int(in.Dest)
		h.Int(in.Srcs[0])
		h.Int(in.Srcs[1])
		h.Int(in.Addr)
	}
	return h.Sum()
}

// elites returns the n fittest individuals (n small; linear selection).
func elites(pop []Individual, n int) []Individual {
	if n == 0 {
		return nil
	}
	idx := make([]int, len(pop))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort: n is 1-3 in practice.
	for i := 0; i < n && i < len(idx); i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if pop[idx[j]].Fitness > pop[idx[best]].Fitness {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	out := make([]Individual, 0, n)
	for i := 0; i < n && i < len(idx); i++ {
		out = append(out, pop[idx[i]])
	}
	return out
}

// tournament picks k random individuals and returns the fittest's sequence.
func tournament(rng *rand.Rand, pop []Individual, k int) []isa.Inst {
	best := rng.Intn(len(pop))
	for i := 1; i < k; i++ {
		c := rng.Intn(len(pop))
		if pop[c].Fitness > pop[best].Fitness {
			best = c
		}
	}
	return pop[best].Seq
}

// crossover performs one-point crossover between two parents.
func crossover(rng *rand.Rand, a, b []isa.Inst) []isa.Inst {
	child := make([]isa.Inst, len(a))
	point := rng.Intn(len(a) + 1)
	copy(child[:point], a[:point])
	copy(child[point:], b[point:])
	return child
}

// mutate applies per-gene mutation in place: with probability MutationRate
// a gene is either replaced by a fresh random instruction or has one
// operand rewritten (the paper mutates instructions and operands).
func mutate(cfg Config, rng *rand.Rand, seq []isa.Inst) {
	for i := range seq {
		if rng.Float64() >= cfg.MutationRate {
			continue
		}
		if rng.Intn(2) == 0 {
			seq[i] = cfg.Pool.RandomInst(rng)
		} else {
			cfg.Pool.MutateOperand(rng, &seq[i])
		}
	}
}
