package ga

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

func islandConfig() IslandConfig {
	base := testConfig()
	base.Generations = 24
	return IslandConfig{
		Base:              base,
		Islands:           3,
		MigrationInterval: 6,
		Migrants:          2,
	}
}

func TestIslandConfigValidate(t *testing.T) {
	if err := islandConfig().Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []func(*IslandConfig){
		func(c *IslandConfig) { c.Base.PopulationSize = 0 },
		func(c *IslandConfig) { c.Islands = 1 },
		func(c *IslandConfig) { c.MigrationInterval = 0 },
		func(c *IslandConfig) { c.Migrants = 0 },
		func(c *IslandConfig) { c.Migrants = 100 },
		func(c *IslandConfig) { c.Base.Generations = 2 },
	}
	for i, mut := range cases {
		cfg := islandConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRunIslandsOptimizes(t *testing.T) {
	res, err := RunIslands(islandConfig(), MeasurerFunc(countSIMD), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Fitness < 0.7 {
		t.Fatalf("island GA plateaued at %v", res.Best.Fitness)
	}
	if len(res.History) != 24 {
		t.Fatalf("history %d generations, want 24", len(res.History))
	}
	// Generation numbering is contiguous across epochs.
	for i, g := range res.History {
		if g.Gen != i {
			t.Fatalf("generation %d numbered %d", i, g.Gen)
		}
	}
	if len(res.FinalPopulation) != islandConfig().Base.PopulationSize {
		t.Fatalf("final population %d", len(res.FinalPopulation))
	}
}

func TestRunIslandsRejectsNilMeasurer(t *testing.T) {
	if _, err := RunIslands(islandConfig(), nil, nil); err == nil {
		t.Fatal("nil measurer accepted")
	}
}

func TestRunIslandsProgress(t *testing.T) {
	cfg := islandConfig()
	cfg.Base.Generations = 12
	cfg.MigrationInterval = 6
	seen := make(map[int]int)
	_, err := RunIslands(cfg, MeasurerFunc(countSIMD), func(s IslandStats) {
		seen[s.Island]++
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Islands; i++ {
		if seen[i] != 12 {
			t.Fatalf("island %d reported %d generations, want 12", i, seen[i])
		}
	}
}

func TestMigrateMovesBestReplacesWorst(t *testing.T) {
	pool := isa.ARM64Pool()
	mk := func(fit float64) Individual {
		return Individual{Seq: pool.RandomSequence(newTestRNG(int64(fit*100)), 4), Fitness: fit}
	}
	pops := [][]Individual{
		{mk(0.9), mk(0.1), mk(0.2)},
		{mk(0.5), mk(0.4), mk(0.3)},
	}
	migrate(pops, 1)
	// Island 1's worst (0.3) replaced by island 0's best (0.9).
	var has09 bool
	for _, ind := range pops[1] {
		if ind.Fitness == 0.9 {
			has09 = true
		}
		if ind.Fitness == 0.3 {
			t.Fatal("worst individual survived migration")
		}
	}
	if !has09 {
		t.Fatal("best emigrant missing from destination")
	}
	// Island 0's worst (0.1) replaced by island 1's best (0.5).
	var has05 bool
	for _, ind := range pops[0] {
		if ind.Fitness == 0.5 {
			has05 = true
		}
	}
	if !has05 {
		t.Fatal("ring migration into island 0 missing")
	}
}

// Island GA should do at least as well as a single population under the
// same total evaluation budget on the synthetic objective.
func TestIslandsCompetitiveWithSinglePopulation(t *testing.T) {
	single := testConfig()
	single.Generations = 24
	sres, err := Run(single, MeasurerFunc(countSIMD), nil)
	if err != nil {
		t.Fatal(err)
	}
	ires, err := RunIslands(islandConfig(), MeasurerFunc(countSIMD), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ires.Best.Fitness < sres.Best.Fitness-0.15 {
		t.Fatalf("islands (%v) clearly worse than single population (%v)",
			ires.Best.Fitness, sres.Best.Fitness)
	}
}

// newTestRNG is a helper for constructing deterministic sequences in tests.
func newTestRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
