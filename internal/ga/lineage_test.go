package ga

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/isa"
)

// measuredPop builds a population with deterministic sequences and assigned
// fitness, as if one generation had just been evaluated.
func measuredPop(rng *rand.Rand, pool *isa.Pool, n, seqLen int) []Individual {
	pop := make([]Individual, n)
	for i := range pop {
		pop[i] = Individual{Seq: pool.RandomSequence(rng, seqLen), Fitness: rng.Float64() * 100}
	}
	return pop
}

func sameSeq(a, b []isa.Inst) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !sameInst(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestLineageRecordsExactDivergence is the breeding property test: every
// bred child carries a lineage whose Diverge is exactly the length of the
// verbatim prefix it shares with its first parent, and whose Parent hash
// identifies that parent. The parent is recovered independently by
// replaying the selection draws with a second generator at the same seed —
// no peeking into breeding internals.
func TestLineageRecordsExactDivergence(t *testing.T) {
	pool := isa.ARM64Pool()
	for _, xover := range []Crossover{OnePoint, TwoPoint, Uniform} {
		cfg := DefaultConfig(pool)
		cfg.PopulationSize = 24
		cfg.SeqLen = 40
		cfg.Crossover = xover
		cfg.MutationRate = 0.1 // high enough that divergence points vary widely
		popRng := rand.New(rand.NewSource(3))
		pop := measuredPop(popRng, pool, cfg.PopulationSize, cfg.SeqLen)

		rngA := rand.New(rand.NewSource(7))
		rngB := rand.New(rand.NewSource(7))
		next := nextGeneration(cfg, rngA, pop)
		if len(next) != cfg.PopulationSize {
			t.Fatalf("next generation has %d individuals, want %d", len(next), cfg.PopulationSize)
		}

		// Elites are byte-identical clones of the fittest and carry no
		// lineage (their measurement can come straight from the parent's
		// cached spectra; resuming a full prefix would be pointless).
		el := elites(pop, cfg.Elites)
		for i := 0; i < cfg.Elites; i++ {
			if next[i].lin != nil {
				t.Fatalf("%v: elite %d carries lineage %+v", xover, i, next[i].lin)
			}
			if !sameSeq(next[i].Seq, el[i].Seq) {
				t.Fatalf("%v: elite %d is not a clone of the %d-fittest", xover, i, i)
			}
			if &next[i].Seq[0] == &el[i].Seq[0] {
				t.Fatalf("%v: elite %d aliases the parent's sequence", xover, i)
			}
		}

		// Replay the breeding draws to identify each child's first parent.
		for i := cfg.Elites; i < len(next); i++ {
			a := selectParent(cfg, rngB, pop, nil)
			b := selectParent(cfg, rngB, pop, nil)
			child := recombine(cfg, rngB, a, b)
			mutate(cfg, rngB, child)
			if !sameSeq(child, next[i].Seq) {
				t.Fatalf("%v: replay diverged from breeding at child %d", xover, i)
			}
			lin := next[i].lin
			if lin == nil {
				t.Fatalf("%v: bred child %d has no lineage", xover, i)
			}
			if lin.Parent != seqHash(a) {
				t.Fatalf("%v: child %d parent hash %x, want %x", xover, i, lin.Parent, seqHash(a))
			}
			if lin.Diverge < 0 || lin.Diverge > len(child) {
				t.Fatalf("%v: child %d divergence %d out of range", xover, i, lin.Diverge)
			}
			for j := 0; j < lin.Diverge; j++ {
				if !sameInst(child[j], a[j]) {
					t.Fatalf("%v: child %d differs from parent at %d < Diverge=%d", xover, i, j, lin.Diverge)
				}
			}
			if lin.Diverge < len(child) && sameInst(child[lin.Diverge], a[lin.Diverge]) {
				t.Fatalf("%v: child %d still matches parent at Diverge=%d (prefix understated)",
					xover, i, lin.Diverge)
			}
		}
	}
}

// lineageRecorder records which path measureAll routes each sequence
// through.
type lineageRecorder struct {
	mu       sync.Mutex
	plain    int
	lineaged int
	lins     []*Lineage
}

func (r *lineageRecorder) Measure(seq []isa.Inst) (float64, float64, error) {
	r.mu.Lock()
	r.plain++
	r.mu.Unlock()
	return float64(len(seq)), 0, nil
}

func (r *lineageRecorder) MeasureLineage(seq []isa.Inst, lin *Lineage) (float64, float64, error) {
	r.mu.Lock()
	r.lineaged++
	r.lins = append(r.lins, lin)
	r.mu.Unlock()
	return float64(len(seq)), 0, nil
}

// TestMeasureAllRoutesLineage pins the dispatch contract: bred individuals
// reach MeasureLineage with their recorded lineage, lineage-free ones (and
// any population under a plain Measurer) take the Measure path.
func TestMeasureAllRoutesLineage(t *testing.T) {
	pool := isa.ARM64Pool()
	rng := rand.New(rand.NewSource(9))
	pop := measuredPop(rng, pool, 8, 20)
	pop[3].lin = &Lineage{Parent: 42, Diverge: 7}
	pop[5].lin = &Lineage{Parent: 43, Diverge: 0}

	rec := &lineageRecorder{}
	if err := measureAll(pop, rec, 4); err != nil {
		t.Fatal(err)
	}
	if rec.plain != 6 || rec.lineaged != 2 {
		t.Fatalf("routing: %d plain / %d lineaged, want 6/2", rec.plain, rec.lineaged)
	}
	seen := map[uint64]bool{}
	for _, l := range rec.lins {
		seen[l.Parent] = true
	}
	if !seen[42] || !seen[43] {
		t.Fatalf("lineages lost in dispatch: %+v", rec.lins)
	}

	// A plain Measurer never sees lineage, and lineage must not leak out of
	// a finished run: Best and FinalPopulation are clones.
	cfg := DefaultConfig(pool)
	cfg.PopulationSize = 10
	cfg.Generations = 3
	cfg.SeqLen = 20
	res, err := Run(cfg, MeasurerFunc(func(seq []isa.Inst) (float64, float64, error) {
		return float64(seq[0].Dest), 0, nil
	}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.lin != nil {
		t.Fatal("Best carries internal lineage")
	}
	for i := range res.FinalPopulation {
		if res.FinalPopulation[i].lin != nil {
			t.Fatalf("FinalPopulation[%d] carries internal lineage", i)
		}
	}
}
