package ga

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/par"
)

// IslandConfig runs several semi-isolated populations ("islands") that
// periodically exchange their best individuals around a ring. Island models
// resist premature convergence: each island explores its own niche of the
// instruction space and migration spreads only proven genes. The paper
// seeds GA runs from previous populations (Section 3.1); islands generalize
// that into a standing topology.
type IslandConfig struct {
	// Base is the per-island GA configuration; Base.Generations is the
	// total generation budget per island across all epochs.
	Base Config
	// Islands is the number of populations (>= 2).
	Islands int
	// MigrationInterval is how many generations each island evolves
	// between migrations.
	MigrationInterval int
	// Migrants is how many top individuals each island sends to its ring
	// neighbour per migration.
	Migrants int
}

// Validate reports the first problem with the configuration.
func (c IslandConfig) Validate() error {
	if err := c.Base.Validate(); err != nil {
		return err
	}
	switch {
	case c.Islands < 2:
		return fmt.Errorf("ga: island model needs >= 2 islands, got %d", c.Islands)
	case c.MigrationInterval < 1:
		return fmt.Errorf("ga: migration interval %d", c.MigrationInterval)
	case c.Migrants < 1 || c.Migrants >= c.Base.PopulationSize:
		return fmt.Errorf("ga: %d migrants with population %d", c.Migrants, c.Base.PopulationSize)
	case c.Base.Generations < c.MigrationInterval:
		return fmt.Errorf("ga: generation budget %d below one migration interval %d",
			c.Base.Generations, c.MigrationInterval)
	}
	return nil
}

// IslandStats reports one island's progress for one epoch.
type IslandStats struct {
	Island int
	GenerationStats
}

// RunIslands evolves the islands in round-robin epochs with ring migration
// and returns the globally best individual plus the winning island's
// history.
func RunIslands(cfg IslandConfig, m Measurer, progress func(IslandStats)) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("ga: nil measurer")
	}
	epochs := cfg.Base.Generations / cfg.MigrationInterval

	pops := make([][]Individual, cfg.Islands)
	histories := make([][]GenerationStats, cfg.Islands)
	genOffset := 0

	// Islands within an epoch are independent until migration, so run them
	// concurrently. The parallelism budget is split: up to Islands workers
	// run whole islands, and any surplus parallelizes fitness evaluation
	// inside each island. Results land in per-island slots and progress is
	// emitted after the epoch in island order, so callbacks and Results are
	// identical to the serial schedule.
	islandWorkers := par.Workers(cfg.Base.Parallelism)
	if islandWorkers > cfg.Islands {
		islandWorkers = cfg.Islands
	}
	innerParallelism := 1
	if islandWorkers > 0 {
		innerParallelism = par.Workers(cfg.Base.Parallelism) / islandWorkers
	}
	if innerParallelism < 1 {
		innerParallelism = 1
	}
	if cfg.Base.Parallelism <= 1 {
		// An explicitly serial config stays serial all the way down.
		islandWorkers, innerParallelism = 1, 1
	}

	for epoch := 0; epoch < epochs; epoch++ {
		results := make([]*Result, cfg.Islands)
		err := par.ForEach(islandWorkers, cfg.Islands, func(i int) error {
			sub := cfg.Base
			sub.Generations = cfg.MigrationInterval
			sub.Parallelism = innerParallelism
			// Decorrelate the islands' random streams per epoch.
			sub.Seed = cfg.Base.Seed + int64(epoch*cfg.Islands+i+1)*7919
			if pops[i] != nil {
				sub.InitialPopulation = seqsOf(pops[i], sub.SeqLen)
			}
			res, err := Run(sub, m, nil)
			if err != nil {
				return fmt.Errorf("ga: island %d epoch %d: %w", i, epoch, err)
			}
			results[i] = res
			return nil
		})
		if err != nil {
			return nil, err
		}
		for i, res := range results {
			pops[i] = res.FinalPopulation
			for _, g := range res.History {
				g.Gen += genOffset
				histories[i] = append(histories[i], g)
				if progress != nil {
					progress(IslandStats{Island: i, GenerationStats: g})
				}
			}
		}
		genOffset += cfg.MigrationInterval
		if epoch < epochs-1 {
			migrate(pops, cfg.Migrants)
		}
	}

	// Pick the best across islands.
	bestIsland, best := 0, Individual{}
	for i, pop := range pops {
		for _, ind := range pop {
			if best.Seq == nil || ind.Fitness > best.Fitness {
				best = ind.clone()
				bestIsland = i
			}
		}
	}
	return &Result{
		Best:            best,
		History:         histories[bestIsland],
		FinalPopulation: pops[bestIsland],
	}, nil
}

// seqsOf extracts the instruction sequences of a population, truncating or
// skipping individuals that do not match the expected length.
func seqsOf(pop []Individual, seqLen int) [][]isa.Inst {
	out := make([][]isa.Inst, 0, len(pop))
	for _, ind := range pop {
		if len(ind.Seq) == seqLen {
			out = append(out, ind.Seq)
		}
	}
	return out
}

// migrate sends each island's top Migrants to the next island in the ring,
// replacing that island's worst individuals.
func migrate(pops [][]Individual, migrants int) {
	n := len(pops)
	// Collect emigrants first so a chain of migrations in one round does
	// not relay an individual across multiple islands.
	emigrants := make([][]Individual, n)
	for i, pop := range pops {
		sorted := make([]Individual, len(pop))
		copy(sorted, pop)
		sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].Fitness > sorted[b].Fitness })
		k := migrants
		if k > len(sorted) {
			k = len(sorted)
		}
		emigrants[i] = make([]Individual, 0, k)
		for _, e := range sorted[:k] {
			emigrants[i] = append(emigrants[i], e.clone())
		}
	}
	for i := range pops {
		dst := (i + 1) % n
		pop := pops[dst]
		// Replace the worst of dst with i's emigrants.
		sort.SliceStable(pop, func(a, b int) bool { return pop[a].Fitness > pop[b].Fitness })
		for j, e := range emigrants[i] {
			pop[len(pop)-1-j] = e
		}
	}
}
