package ga

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/isa"
)

// Selection chooses how parents are picked. The paper uses tournament
// selection; truncation and roulette are provided for the operator
// ablations.
type Selection int

// Selection schemes.
const (
	// Tournament picks the fittest of TournamentSize random individuals.
	Tournament Selection = iota
	// Truncation picks uniformly among the top quarter of the population.
	Truncation
	// Roulette picks with probability proportional to rank (rank-based
	// roulette avoids fitness-scale problems with dBm values).
	Roulette
)

// String returns the scheme name.
func (s Selection) String() string {
	switch s {
	case Tournament:
		return "tournament"
	case Truncation:
		return "truncation"
	case Roulette:
		return "roulette"
	default:
		return fmt.Sprintf("selection(%d)", int(s))
	}
}

// Crossover chooses how two parents recombine. The paper uses one-point
// crossover.
type Crossover int

// Crossover schemes.
const (
	// OnePoint splits both parents at one random point.
	OnePoint Crossover = iota
	// TwoPoint exchanges a random middle segment.
	TwoPoint
	// Uniform picks each gene from a random parent.
	Uniform
)

// String returns the scheme name.
func (c Crossover) String() string {
	switch c {
	case OnePoint:
		return "one-point"
	case TwoPoint:
		return "two-point"
	case Uniform:
		return "uniform"
	default:
		return fmt.Sprintf("crossover(%d)", int(c))
	}
}

// selectParent applies the configured selection scheme.
func selectParent(cfg Config, rng *rand.Rand, pop []Individual, ranked []int) []isa.Inst {
	switch cfg.Selection {
	case Truncation:
		top := len(ranked) / 4
		if top < 1 {
			top = 1
		}
		return pop[ranked[rng.Intn(top)]].Seq
	case Roulette:
		// Rank-based: weight n for the best, 1 for the worst.
		n := len(ranked)
		total := n * (n + 1) / 2
		pick := rng.Intn(total)
		acc := 0
		for i, idx := range ranked {
			acc += n - i
			if pick < acc {
				return pop[idx].Seq
			}
		}
		return pop[ranked[n-1]].Seq
	default:
		return tournament(rng, pop, cfg.TournamentSize)
	}
}

// rankIndices returns population indices sorted by descending fitness.
func rankIndices(pop []Individual) []int {
	idx := make([]int, len(pop))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return pop[idx[a]].Fitness > pop[idx[b]].Fitness
	})
	return idx
}

// recombine applies the configured crossover scheme.
func recombine(cfg Config, rng *rand.Rand, a, b []isa.Inst) []isa.Inst {
	child := make([]isa.Inst, len(a))
	switch cfg.Crossover {
	case TwoPoint:
		p1 := rng.Intn(len(a) + 1)
		p2 := rng.Intn(len(a) + 1)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		copy(child, a)
		copy(child[p1:p2], b[p1:p2])
	case Uniform:
		for i := range child {
			if rng.Intn(2) == 0 {
				child[i] = a[i]
			} else {
				child[i] = b[i]
			}
		}
	default:
		return crossover(rng, a, b)
	}
	return child
}
