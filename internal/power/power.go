// Package power converts micro-architectural activity into electrical load:
// it maps per-cycle switching charge (from internal/uarch) to a current
// waveform at a given clock frequency, resamples it onto the circuit
// solver's time grid, and composes multi-core cluster loads.
//
// Current model: a cycle that moves charge Q at clock frequency f draws a
// mean current of Q·f during that cycle. Lowering the clock both stretches
// the loop period (lowering the loop frequency) and reduces the current
// amplitude — exactly the coupled modulation the paper's fast resonance
// sweep (Section 5.3) exploits.
package power

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/isa"
	"repro/internal/uarch"
)

// ClusterLoad describes a homogeneous CPU cluster running one stress loop
// per active core, all cores clocked together.
type ClusterLoad struct {
	Core    uarch.Config
	Seq     []isa.Inst
	ClockHz float64
	// ActiveCores is how many cores run the loop. Idle (but powered)
	// cores draw only base charge; see IdleCurrent.
	ActiveCores int
	// PhaseCycles optionally staggers each active core by a cycle offset.
	// Empty means all cores aligned — the worst case a virus targets.
	PhaseCycles []float64
}

// Validate reports the first problem with the load description.
func (cl ClusterLoad) Validate() error {
	if err := cl.Core.Validate(); err != nil {
		return err
	}
	switch {
	case len(cl.Seq) == 0:
		return fmt.Errorf("power: empty stress loop")
	case cl.ClockHz <= 0 || math.IsNaN(cl.ClockHz) || math.IsInf(cl.ClockHz, 0):
		return fmt.Errorf("power: invalid clock %v", cl.ClockHz)
	case cl.ActiveCores < 1:
		return fmt.Errorf("power: %d active cores", cl.ActiveCores)
	case len(cl.PhaseCycles) != 0 && len(cl.PhaseCycles) != cl.ActiveCores:
		return fmt.Errorf("power: %d phase offsets for %d cores", len(cl.PhaseCycles), cl.ActiveCores)
	}
	return nil
}

// SteadySim is the sized simulation behind one evaluation of a load on a
// dt×n sample window: the micro-architectural result Current resamples,
// the grid it was sized for, and the period-snap scale. Batched campaign
// paths obtain one per operating point (optionally served from a primed
// uarch.Trace) and share it between the loop-frequency prefilter and the
// waveform resample, so no point pays the sizing twice.
type SteadySim struct {
	// Res is the micro-architectural result a Current call with the same
	// grid would return.
	Res *uarch.Result
	// Dt and N are the sampling grid the simulation was sized for.
	Dt float64
	N  int

	scale float64 // period-snap time-base warp (see steadySim)
}

// maxPhase returns the longest phase offset, which extends the needed
// steady window.
func (cl ClusterLoad) maxPhase() float64 {
	m := 0.0
	for _, p := range cl.PhaseCycles {
		if p > m {
			m = p
		}
	}
	return m
}

// PrimeSteadyCycles returns the steady-window demand (in cycles) an
// evaluation of this load on a dt×n grid may make of the simulator,
// including the 5% period-snap headroom. A campaign primes uarch.PrimeTrace
// with this value at its largest clock; every smaller clock's demand is a
// covered prefix.
func (cl ClusterLoad) PrimeSteadyCycles(dt float64, n int) int {
	maxPhase := cl.maxPhase()
	window := float64(n) * dt * cl.ClockHz
	minSteady := int(math.Ceil(window+maxPhase)) + 8
	upfront := int(math.Ceil(window*1.05+maxPhase)) + 2
	if upfront > minSteady {
		return upfront
	}
	return minSteady
}

// steadySim sizes the simulation for a dt×n sample window. The sizing is
// two-stage: the snap decision reads the loop period from a minimally sized
// run, and the snapped window may then need a slightly longer trace (the
// warp is bounded at 5%). With the trace cache enabled, one simulation
// covering the 5% bound is primed up front so both stages are served as
// pure cache hits — prefix-consistent synthesis keeps every stage
// bit-identical to running the simulator per stage, which is what happens
// when the cache is disabled.
//
// A non-nil covering tr short-circuits both stages onto the primed history:
// stage 1 reads only the loop period (no Result materialized) and stage 2
// synthesizes the one Result the caller keeps — the same prefix synthesis
// the cache performs, so results stay bit-identical whether the trace, the
// cache, or a per-stage simulation serves the request.
func (cl ClusterLoad) steadySim(dt float64, n int, lin *uarch.Lineage, tr *uarch.Trace) (SteadySim, error) {
	maxPhase := cl.maxPhase()
	window := float64(n) * dt * cl.ClockHz // cycles covered by the sample window
	minSteady := int(math.Ceil(window+maxPhase)) + 8

	var res *uarch.Result
	var loopCycles float64
	fromTrace := tr.Covers(minSteady)
	if fromTrace {
		lc, err := tr.LoopCyclesAt(minSteady)
		if err != nil {
			return SteadySim{}, err
		}
		loopCycles = lc
	} else {
		// Prime the one backing simulation to cover any snapped window (the
		// warp is bounded at 5%), so the possible re-run below is a pure
		// cache hit. With the cache disabled the priming window is ignored
		// and each stage simulates at its own size — bit-identical either way.
		upfront := int(math.Ceil(window*1.05+maxPhase)) + 2
		r, err := uarch.RunLineageWindow(cl.Core, cl.Seq, minSteady, upfront, lin)
		if err != nil {
			return SteadySim{}, err
		}
		res, loopCycles = r, r.LoopCycles
	}
	// Period snapping: warp the time base slightly so an integer number of
	// loop periods fills the window exactly. Downstream FFT analyses then
	// see a truly periodic signal with no wrap discontinuity (no spectral
	// leakage splashing into the PDN resonance). The warp is bounded at
	// 5%; if the window holds less than ~one period, sample unwarped.
	scale := 1.0
	if loopCycles > 0 {
		k := math.Round(window / loopCycles)
		if k >= 1 {
			s := k * loopCycles / window
			if math.Abs(s-1) <= 0.05 {
				scale = s
			}
		}
	}
	needed := int(math.Ceil(window*scale+maxPhase)) + 2
	if fromTrace {
		// The scalar path re-runs at `needed` only when it exceeds the
		// stage-1 window (stage 1 always holds exactly minSteady steady
		// cycles), so synthesize at whichever window that run would keep.
		size := minSteady
		if needed > minSteady {
			size = needed
		}
		if !tr.Covers(size) {
			// The priming window was sized for the 5% bound, so this is
			// unreachable from PrimeSteadyCycles-sized traces; fall back to
			// the scalar stage-2 run for under-primed hand-built ones.
			r, err := uarch.RunLineage(cl.Core, cl.Seq, size, lin)
			if err != nil {
				return SteadySim{}, err
			}
			res = r
		} else {
			r, err := tr.Synth(size)
			if err != nil {
				return SteadySim{}, err
			}
			res = r
		}
	} else if len(res.SteadyCharge()) < needed {
		r, err := uarch.RunLineage(cl.Core, cl.Seq, needed, lin)
		if err != nil {
			return SteadySim{}, err
		}
		res = r
	}
	return SteadySim{Res: res, Dt: dt, N: n, scale: scale}, nil
}

// SteadySimTrace sizes the simulation for a dt×n sample window, drawing
// from tr when it covers the demand (see PrimeSteadyCycles) and falling
// back to the scalar per-point sizing otherwise — including for a nil
// trace, so campaign paths thread an optional priming unconditionally.
// The returned sim feeds FillFromSim and LoopFrequency.
func (cl ClusterLoad) SteadySimTrace(dt float64, n int, tr *uarch.Trace) (SteadySim, error) {
	if err := cl.Validate(); err != nil {
		return SteadySim{}, err
	}
	if dt <= 0 || n < 1 {
		return SteadySim{}, fmt.Errorf("power: invalid sampling dt=%v n=%d", dt, n)
	}
	return cl.steadySim(dt, n, nil, tr)
}

// wavePool recycles current-waveform buffers between Current calls. The
// waveform is the largest per-evaluation allocation (n float64s); callers
// that are done with it hand it back via PutWave.
var wavePool sync.Pool

// getWave returns a waveform buffer of length n; fillCurrent overwrites (or
// clears) every element, so recycled buffers are not re-zeroed here.
func getWave(n int) []float64 {
	if p, _ := wavePool.Get().(*[]float64); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]float64, n)
}

// PutWave recycles a waveform previously returned by Current (or
// CurrentLineage). The caller must not touch the slice afterwards. Putting
// a waveform that escaped into a cache or result is a bug; only transient,
// locally consumed waveforms may be recycled.
func PutWave(w []float64) {
	if cap(w) == 0 {
		return
	}
	wavePool.Put(&w)
}

// Current simulates the loop and returns the cluster current sampled at dt
// over n samples, together with the micro-architectural result.
func (cl ClusterLoad) Current(dt float64, n int) ([]float64, *uarch.Result, error) {
	return cl.CurrentLineage(dt, n, nil)
}

// CurrentLineage is Current with an optional simulation lineage hint (see
// uarch.RunLineage); results are bit-identical for any hint value.
func (cl ClusterLoad) CurrentLineage(dt float64, n int, lin *uarch.Lineage) ([]float64, *uarch.Result, error) {
	out := getWave(n)
	res, err := cl.CurrentLineageInto(out, dt, n, lin)
	if err != nil {
		PutWave(out)
		return nil, nil, err
	}
	return out, res, nil
}

// CurrentLineageInto is CurrentLineage writing the waveform into a caller-
// provided buffer of length n (a batch slab row), bypassing the wave pool.
// dst is fully overwritten, with the same arithmetic in the same order as
// CurrentLineage, so the filled row is bit-identical.
func (cl ClusterLoad) CurrentLineageInto(dst []float64, dt float64, n int, lin *uarch.Lineage) (*uarch.Result, error) {
	if err := cl.Validate(); err != nil {
		return nil, err
	}
	if dt <= 0 || n < 1 {
		return nil, fmt.Errorf("power: invalid sampling dt=%v n=%d", dt, n)
	}
	if len(dst) != n {
		return nil, fmt.Errorf("power: waveform buffer length %d, want %d", len(dst), n)
	}
	return cl.fillCurrent(dst, dt, n, lin)
}

// fillCurrent simulates the loop and resamples the cluster current into out
// (len n).
func (cl ClusterLoad) fillCurrent(out []float64, dt float64, n int, lin *uarch.Lineage) (*uarch.Result, error) {
	sim, err := cl.steadySim(dt, n, lin, nil)
	if err != nil {
		return nil, err
	}
	cl.fillFromSim(sim, out)
	return sim.Res, nil
}

// FillFromSim resamples a prepared simulation into out (len sim.N),
// exactly as a Current call that performed the sizing itself would — the
// shared body is what keeps batched campaign points bit-identical to the
// scalar path.
func (cl ClusterLoad) FillFromSim(sim SteadySim, out []float64) error {
	if sim.Res == nil {
		return fmt.Errorf("power: empty steady sim")
	}
	if len(out) != sim.N {
		return fmt.Errorf("power: waveform buffer length %d, want %d", len(out), sim.N)
	}
	cl.fillFromSim(sim, out)
	return nil
}

// fillFromSim resamples the simulated charge trace into out. The aligned
// path overwrites every element; the phased path accumulates, so it clears
// first.
func (cl ClusterLoad) fillFromSim(sim SteadySim, out []float64) {
	dt, n, scale := sim.Dt, sim.N, sim.scale
	steady := sim.Res.SteadyCharge()
	if len(cl.PhaseCycles) == 0 {
		// All cores aligned: every core samples the same trace index, so
		// resample once and add the per-core value ActiveCores times (the
		// repeated add reproduces the per-core accumulation bit-for-bit).
		for i := 0; i < n; i++ {
			cyc := float64(i) * dt * scale * cl.ClockHz
			idx := int(cyc)
			if idx >= len(steady) {
				idx = len(steady) - 1
			}
			v := steady[idx] * cl.ClockHz
			acc := 0.0
			for core := 0; core < cl.ActiveCores; core++ {
				acc += v
			}
			out[i] = acc
		}
	} else {
		clear(out)
		for core := 0; core < cl.ActiveCores; core++ {
			phase := cl.PhaseCycles[core]
			for i := 0; i < n; i++ {
				cyc := float64(i)*dt*scale*cl.ClockHz + phase
				idx := int(cyc)
				if idx >= len(steady) {
					idx = len(steady) - 1
				}
				out[i] += steady[idx] * cl.ClockHz
			}
		}
	}
	applySlew(out, dt, cl.Core.CurrentSlewTau)
}

// LoopHz returns the loop fundamental frequency a Current call with the
// same sampling grid would report, without resampling the waveform. It
// shares Current's exact simulation sizing, so the underlying uarch result
// is identical — with the trace cache warm this is nearly free, letting
// callers band-filter operating points before paying for spectra.
func (cl ClusterLoad) LoopHz(dt float64, n int) (float64, *uarch.Result, error) {
	if err := cl.Validate(); err != nil {
		return 0, nil, err
	}
	if dt <= 0 || n < 1 {
		return 0, nil, fmt.Errorf("power: invalid sampling dt=%v n=%d", dt, n)
	}
	sim, err := cl.steadySim(dt, n, nil, nil)
	if err != nil {
		return 0, nil, err
	}
	return LoopFrequency(sim.Res, cl.ClockHz), sim.Res, nil
}

// applySlew low-passes a (periodic) current waveform in place with the
// core's current-ramp time constant. The filter is warmed by one silent
// pass over the buffer so the periodic waveform has no startup transient.
func applySlew(wave []float64, dt, tau float64) {
	if tau <= 0 || len(wave) == 0 {
		return
	}
	alpha := 1 - math.Exp(-dt/tau)
	// Warm the filter over the tail of the periodic buffer: the arbitrary
	// starting state decays by exp(-dt/tau) per sample, so 45 time
	// constants bury it far below double-precision rounding and the state
	// entering sample 0 is the converged end-of-period state. Longer time
	// constants warm over the whole buffer, as before.
	k := len(wave)
	if need := 45 * tau / dt; need < float64(k) {
		k = int(need) + 1
	}
	acc := wave[len(wave)-k]
	for _, v := range wave[len(wave)-k:] {
		acc += alpha * (v - acc)
	}
	for i, v := range wave {
		acc += alpha * (v - acc)
		wave[i] = acc
	}
}

// IdleCurrent returns the current drawn by one powered-but-idle core at the
// given clock: the base charge plus all issue slots idle.
func IdleCurrent(cfg uarch.Config, clockHz float64) float64 {
	return (cfg.BaseCharge + float64(cfg.IssueWidth)*cfg.IdleSlotCharge) * clockHz
}

// MeanCurrent returns the time average of a current waveform.
func MeanCurrent(wave []float64) float64 {
	if len(wave) == 0 {
		return 0
	}
	var s float64
	for _, v := range wave {
		s += v
	}
	return s / float64(len(wave))
}

// LoopFrequency returns the stress loop's fundamental frequency, the
// inverse of the steady-state loop period (paper Table 2's "loop freq").
func LoopFrequency(res *uarch.Result, clockHz float64) float64 {
	if res.LoopCycles <= 0 {
		return 0
	}
	return clockHz / res.LoopCycles
}
