// Package power converts micro-architectural activity into electrical load:
// it maps per-cycle switching charge (from internal/uarch) to a current
// waveform at a given clock frequency, resamples it onto the circuit
// solver's time grid, and composes multi-core cluster loads.
//
// Current model: a cycle that moves charge Q at clock frequency f draws a
// mean current of Q·f during that cycle. Lowering the clock both stretches
// the loop period (lowering the loop frequency) and reduces the current
// amplitude — exactly the coupled modulation the paper's fast resonance
// sweep (Section 5.3) exploits.
package power

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/uarch"
)

// ClusterLoad describes a homogeneous CPU cluster running one stress loop
// per active core, all cores clocked together.
type ClusterLoad struct {
	Core    uarch.Config
	Seq     []isa.Inst
	ClockHz float64
	// ActiveCores is how many cores run the loop. Idle (but powered)
	// cores draw only base charge; see IdleCurrent.
	ActiveCores int
	// PhaseCycles optionally staggers each active core by a cycle offset.
	// Empty means all cores aligned — the worst case a virus targets.
	PhaseCycles []float64
}

// Validate reports the first problem with the load description.
func (cl ClusterLoad) Validate() error {
	if err := cl.Core.Validate(); err != nil {
		return err
	}
	switch {
	case len(cl.Seq) == 0:
		return fmt.Errorf("power: empty stress loop")
	case cl.ClockHz <= 0 || math.IsNaN(cl.ClockHz) || math.IsInf(cl.ClockHz, 0):
		return fmt.Errorf("power: invalid clock %v", cl.ClockHz)
	case cl.ActiveCores < 1:
		return fmt.Errorf("power: %d active cores", cl.ActiveCores)
	case len(cl.PhaseCycles) != 0 && len(cl.PhaseCycles) != cl.ActiveCores:
		return fmt.Errorf("power: %d phase offsets for %d cores", len(cl.PhaseCycles), cl.ActiveCores)
	}
	return nil
}

// Current simulates the loop and returns the cluster current sampled at dt
// over n samples, together with the micro-architectural result.
func (cl ClusterLoad) Current(dt float64, n int) ([]float64, *uarch.Result, error) {
	if err := cl.Validate(); err != nil {
		return nil, nil, err
	}
	if dt <= 0 || n < 1 {
		return nil, nil, fmt.Errorf("power: invalid sampling dt=%v n=%d", dt, n)
	}
	// Longest phase offset extends the needed steady window.
	maxPhase := 0.0
	for _, p := range cl.PhaseCycles {
		if p > maxPhase {
			maxPhase = p
		}
	}
	window := float64(n) * dt * cl.ClockHz // cycles covered by the sample window
	minSteady := int(math.Ceil(window+maxPhase)) + 8
	res, err := uarch.Run(cl.Core, cl.Seq, minSteady)
	if err != nil {
		return nil, nil, err
	}
	// Period snapping: warp the time base slightly so an integer number of
	// loop periods fills the window exactly. Downstream FFT analyses then
	// see a truly periodic signal with no wrap discontinuity (no spectral
	// leakage splashing into the PDN resonance). The warp is bounded at
	// 5%; if the window holds less than ~one period, sample unwarped.
	scale := 1.0
	if res.LoopCycles > 0 {
		k := math.Round(window / res.LoopCycles)
		if k >= 1 {
			s := k * res.LoopCycles / window
			if math.Abs(s-1) <= 0.05 {
				scale = s
			}
		}
	}
	needed := int(math.Ceil(window*scale+maxPhase)) + 2
	if steadyLen := len(res.SteadyCharge()); steadyLen < needed {
		res, err = uarch.Run(cl.Core, cl.Seq, needed)
		if err != nil {
			return nil, nil, err
		}
	}
	steady := res.SteadyCharge()
	out := make([]float64, n)
	for core := 0; core < cl.ActiveCores; core++ {
		phase := 0.0
		if len(cl.PhaseCycles) > 0 {
			phase = cl.PhaseCycles[core]
		}
		for i := 0; i < n; i++ {
			cyc := float64(i)*dt*scale*cl.ClockHz + phase
			idx := int(cyc)
			if idx >= len(steady) {
				idx = len(steady) - 1
			}
			out[i] += steady[idx] * cl.ClockHz
		}
	}
	applySlew(out, dt, cl.Core.CurrentSlewTau)
	return out, res, nil
}

// applySlew low-passes a (periodic) current waveform in place with the
// core's current-ramp time constant. The filter is warmed by one silent
// pass over the buffer so the periodic waveform has no startup transient.
func applySlew(wave []float64, dt, tau float64) {
	if tau <= 0 || len(wave) == 0 {
		return
	}
	alpha := 1 - math.Exp(-dt/tau)
	acc := wave[0]
	for _, v := range wave {
		acc += alpha * (v - acc)
	}
	for i, v := range wave {
		acc += alpha * (v - acc)
		wave[i] = acc
	}
}

// IdleCurrent returns the current drawn by one powered-but-idle core at the
// given clock: the base charge plus all issue slots idle.
func IdleCurrent(cfg uarch.Config, clockHz float64) float64 {
	return (cfg.BaseCharge + float64(cfg.IssueWidth)*cfg.IdleSlotCharge) * clockHz
}

// MeanCurrent returns the time average of a current waveform.
func MeanCurrent(wave []float64) float64 {
	if len(wave) == 0 {
		return 0
	}
	var s float64
	for _, v := range wave {
		s += v
	}
	return s / float64(len(wave))
}

// LoopFrequency returns the stress loop's fundamental frequency, the
// inverse of the steady-state loop period (paper Table 2's "loop freq").
func LoopFrequency(res *uarch.Result, clockHz float64) float64 {
	if res.LoopCycles <= 0 {
		return 0
	}
	return clockHz / res.LoopCycles
}
