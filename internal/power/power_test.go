package power

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/uarch"
)

func testSeq(t *testing.T) []isa.Inst {
	t.Helper()
	p := isa.ARM64Pool()
	add, _ := p.DefByMnemonic("add")
	div, _ := p.DefByMnemonic("sdiv")
	var seq []isa.Inst
	for i := 0; i < 8; i++ {
		seq = append(seq, isa.Inst{Def: add, Dest: i + 1})
	}
	seq = append(seq, isa.Inst{Def: div, Dest: 15, Srcs: [2]int{15, 15}})
	return seq
}

func TestValidate(t *testing.T) {
	good := ClusterLoad{Core: uarch.CortexA53(), Seq: testSeq(t), ClockHz: 1e9, ActiveCores: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("good load rejected: %v", err)
	}
	cases := []func(*ClusterLoad){
		func(c *ClusterLoad) { c.Seq = nil },
		func(c *ClusterLoad) { c.ClockHz = 0 },
		func(c *ClusterLoad) { c.ClockHz = math.NaN() },
		func(c *ClusterLoad) { c.ActiveCores = 0 },
		func(c *ClusterLoad) { c.PhaseCycles = []float64{1} }, // 1 offset, 2 cores
		func(c *ClusterLoad) { c.Core.IssueWidth = 0 },
	}
	for i, mut := range cases {
		cl := good
		mut(&cl)
		if err := cl.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestCurrentBadSampling(t *testing.T) {
	cl := ClusterLoad{Core: uarch.CortexA53(), Seq: testSeq(t), ClockHz: 1e9, ActiveCores: 1}
	if _, _, err := cl.Current(0, 10); err == nil {
		t.Error("dt=0 accepted")
	}
	if _, _, err := cl.Current(1e-9, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestCurrentScalesWithCores(t *testing.T) {
	mk := func(cores int) []float64 {
		cl := ClusterLoad{Core: uarch.CortexA53(), Seq: testSeq(t), ClockHz: 950e6, ActiveCores: cores}
		w, _, err := cl.Current(0.5e-9, 2048)
		if err != nil {
			t.Fatalf("Current(%d cores): %v", cores, err)
		}
		return w
	}
	one := MeanCurrent(mk(1))
	four := MeanCurrent(mk(4))
	if math.Abs(four-4*one) > 0.01*four {
		t.Fatalf("4-core mean %v, want 4x single %v", four, 4*one)
	}
}

func TestCurrentScalesWithClock(t *testing.T) {
	mean := func(clock float64) float64 {
		cl := ClusterLoad{Core: uarch.CortexA53(), Seq: testSeq(t), ClockHz: clock, ActiveCores: 1}
		w, _, err := cl.Current(0.5e-9, 2048)
		if err != nil {
			t.Fatal(err)
		}
		return MeanCurrent(w)
	}
	hi := mean(1.2e9)
	lo := mean(0.6e9)
	// Mean current should halve with clock (same charge per cycle, cycles
	// take twice as long).
	if math.Abs(hi-2*lo) > 0.05*hi {
		t.Fatalf("current does not scale with clock: %v vs 2x %v", hi, lo)
	}
}

func TestPhaseOffsetsShiftWaveform(t *testing.T) {
	base := ClusterLoad{Core: uarch.CortexA53(), Seq: testSeq(t), ClockHz: 1e9, ActiveCores: 1}
	w0, res, err := base.Current(1e-9, 1024)
	if err != nil {
		t.Fatal(err)
	}
	period := res.LoopCycles
	shifted := base
	shifted.PhaseCycles = []float64{period} // one full loop: same waveform
	w1, _, err := shifted.Current(1e-9, 1024)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w0 {
		if math.Abs(w0[i]-w1[i]) > 1e-9 {
			t.Fatalf("full-period phase shift changed waveform at %d: %v vs %v", i, w0[i], w1[i])
		}
	}
	// A half-period shift must differ somewhere (the loop has phases).
	half := base
	half.PhaseCycles = []float64{period / 2}
	w2, _, err := half.Current(1e-9, 1024)
	if err != nil {
		t.Fatal(err)
	}
	var differs bool
	for i := range w0 {
		if math.Abs(w0[i]-w2[i]) > 1e-6 {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("half-period phase shift produced identical waveform")
	}
}

func TestIdleCurrent(t *testing.T) {
	cfg := uarch.CortexA53()
	got := IdleCurrent(cfg, 1e9)
	want := (cfg.BaseCharge + float64(cfg.IssueWidth)*cfg.IdleSlotCharge) * 1e9
	if got != want {
		t.Fatalf("IdleCurrent = %v, want %v", got, want)
	}
	if got <= 0 {
		t.Fatal("idle current not positive")
	}
}

func TestMeanCurrentEmpty(t *testing.T) {
	if MeanCurrent(nil) != 0 {
		t.Fatal("empty mean not 0")
	}
}

func TestLoopFrequency(t *testing.T) {
	res := &uarch.Result{LoopCycles: 20}
	if f := LoopFrequency(res, 1e9); f != 50e6 {
		t.Fatalf("LoopFrequency = %v, want 50 MHz", f)
	}
	if f := LoopFrequency(&uarch.Result{}, 1e9); f != 0 {
		t.Fatalf("zero-period LoopFrequency = %v", f)
	}
}

// Property: the waveform is strictly positive and bounded by a generous
// per-core ceiling, for random loops on random clocks.
func TestCurrentBoundsProperty(t *testing.T) {
	p := isa.ARM64Pool()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := p.RandomSequence(rng, 10+rng.Intn(40))
		clock := 0.2e9 + 1.0e9*rng.Float64()
		cores := 1 + rng.Intn(4)
		cl := ClusterLoad{Core: uarch.CortexA53(), Seq: seq, ClockHz: clock, ActiveCores: cores}
		w, _, err := cl.Current(0.5e-9, 512)
		if err != nil {
			return false
		}
		// Ceiling: width * max charge * scale * clock per core, plus base.
		ceiling := float64(cores) * clock * 20e-9
		for _, v := range w {
			if v <= 0 || v > ceiling {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSteadySimTraceMatchesCurrent pins the batched sizing path: a
// simulation served from a campaign-primed trace, resampled via
// FillFromSim, must reproduce the scalar Current waveform bit for bit at
// every clock the prime covers — including clocks whose stage-2 resize
// exceeds the stage-1 window.
func TestSteadySimTraceMatchesCurrent(t *testing.T) {
	seq := testSeq(t)
	cfg := uarch.CortexA72()
	dt, n := 0.5e-9, 2048
	clocks := []float64{1.2e9, 0.9e9, 0.6e9, 0.12e9}

	uarch.ResetTraceCache()
	prev := uarch.SetTraceCacheEnabled(false)
	defer func() { uarch.SetTraceCacheEnabled(prev); uarch.ResetTraceCache() }()

	maxCl := ClusterLoad{Core: cfg, Seq: seq, ClockHz: clocks[0], ActiveCores: 2}
	tr, err := uarch.PrimeTrace(cfg, seq, maxCl.PrimeSteadyCycles(dt, n))
	if err != nil {
		t.Fatal(err)
	}
	for _, clock := range clocks {
		cl := ClusterLoad{Core: cfg, Seq: seq, ClockHz: clock, ActiveCores: 2}
		want, wantRes, err := cl.Current(dt, n)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := cl.SteadySimTrace(dt, n, tr)
		if err != nil {
			t.Fatalf("clock %v: %v", clock, err)
		}
		if math.Float64bits(LoopFrequency(sim.Res, clock)) != math.Float64bits(LoopFrequency(wantRes, clock)) {
			t.Fatalf("clock %v: loop frequency diverges", clock)
		}
		got := make([]float64, n)
		if err := cl.FillFromSim(sim, got); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("clock %v: wave[%d] = %v != %v", clock, i, got[i], want[i])
			}
		}
		PutWave(want)
	}

	// A nil trace must fall back to per-point sizing with identical bits.
	cl := ClusterLoad{Core: cfg, Seq: seq, ClockHz: clocks[1], ActiveCores: 2}
	want, _, err := cl.Current(dt, n)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := cl.SteadySimTrace(dt, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, n)
	if err := cl.FillFromSim(sim, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("nil trace: wave[%d] = %v != %v", i, got[i], want[i])
		}
	}
	PutWave(want)
}

// TestFillFromSimValidation: an empty sim and a mis-sized row are rejected.
func TestFillFromSimValidation(t *testing.T) {
	seq := testSeq(t)
	cl := ClusterLoad{Core: uarch.CortexA72(), Seq: seq, ClockHz: 1e9, ActiveCores: 1}
	if err := cl.FillFromSim(SteadySim{}, make([]float64, 4)); err == nil {
		t.Fatal("empty sim accepted")
	}
	sim, err := cl.SteadySimTrace(1e-9, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.FillFromSim(sim, make([]float64, 255)); err == nil {
		t.Fatal("short destination accepted")
	}
}
