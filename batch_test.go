package emnoise

// Bit-identity tests for generation-batched evaluation: the batch path
// (dedup + measurement memo + slab arenas) must produce exactly the bytes
// the per-individual path produces, at any parallelism. `go test -race`
// over this file also drives the batch workers under the race detector.

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ga"
)

// scalarOnly forwards a bench measurer's per-individual methods while
// hiding MeasureBatch, forcing the GA onto the scalar fallback path.
type scalarOnly struct{ m Measurer }

func (s scalarOnly) Measure(seq []Inst) (float64, float64, error) { return s.m.Measure(seq) }

func (s scalarOnly) MeasureLineage(seq []Inst, lin *ga.Lineage) (float64, float64, error) {
	return s.m.(ga.LineageMeasurer).MeasureLineage(seq, lin)
}

// batchGARun executes a small GA on a fresh platform, optionally forcing
// the scalar path, and returns the result plus the bench for stats checks.
func batchGARun(t *testing.T, parallelism int, scalar bool) (*GAResult, *Bench) {
	t.Helper()
	plat, err := JunoR2()
	if err != nil {
		t.Fatal(err)
	}
	bench, err := NewBench(plat, 3)
	if err != nil {
		t.Fatal(err)
	}
	bench.Samples = 3
	d, err := plat.Domain(DomainA72)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGAConfig(d.Spec.Pool())
	cfg.PopulationSize = 14
	cfg.Generations = 7
	cfg.Seed = 11
	cfg.Parallelism = parallelism
	var m Measurer = bench.EMMeasurer(d, 2)
	if scalar {
		m = scalarOnly{m: m}
	}
	res, err := RunGA(cfg, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res, bench
}

// TestBatchMatchesScalarGA pins the tentpole guarantee: a GA run through
// MeasureBatch is bit-for-bit the run through per-individual Measure calls
// — same best, same history, same final population — at serial and
// parallel worker counts.
func TestBatchMatchesScalarGA(t *testing.T) {
	for _, parallelism := range []int{1, 8} {
		scalarRes, scalarBench := batchGARun(t, parallelism, true)
		batchRes, batchBench := batchGARun(t, parallelism, false)
		if bs := scalarBench.BatchStats(); bs.Batches != 0 {
			t.Fatalf("j=%d: scalar run used the batch path: %+v", parallelism, bs)
		}
		if bs := batchBench.BatchStats(); bs.Batches == 0 {
			t.Fatalf("j=%d: batch run never used the batch path", parallelism)
		}
		if !reflect.DeepEqual(scalarRes.Best, batchRes.Best) {
			t.Errorf("j=%d: best differs:\nscalar %+v\nbatch  %+v", parallelism, scalarRes.Best, batchRes.Best)
		}
		if !reflect.DeepEqual(scalarRes.History, batchRes.History) {
			t.Errorf("j=%d: generation history differs between scalar and batch", parallelism)
		}
		if !reflect.DeepEqual(scalarRes.FinalPopulation, batchRes.FinalPopulation) {
			t.Errorf("j=%d: final population differs between scalar and batch", parallelism)
		}
	}
}

// TestMeasureBatchMatchesScalarRandomPopulations is the direct property
// test: random populations salted with exact duplicates and with bred
// (lineage-carrying) children must come back element-for-element identical
// to scalar MeasureLineage calls, at -j 1 and -j 8, with every duplicate
// fanned out from one measurement.
func TestMeasureBatchMatchesScalarRandomPopulations(t *testing.T) {
	plat, err := JunoR2()
	if err != nil {
		t.Fatal(err)
	}
	bench, err := NewBench(plat, 3)
	if err != nil {
		t.Fatal(err)
	}
	bench.Samples = 3
	d, err := plat.Domain(DomainA72)
	if err != nil {
		t.Fatal(err)
	}
	pool := d.Spec.Pool()
	m := bench.EMMeasurer(d, 2)
	bm, ok := m.(ga.BatchMeasurer)
	if !ok {
		t.Fatal("bench EM measurer does not implement ga.BatchMeasurer")
	}
	lm := m.(ga.LineageMeasurer)

	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 3; trial++ {
		var items []ga.BatchItem
		for i := 0; i < 6; i++ {
			parent := pool.RandomSequence(rng, 12)
			items = append(items, ga.BatchItem{Seq: parent})
			// A bred child: shares the parent's prefix, carries a lineage
			// hint pointing at the divergence index.
			div := 4 + rng.Intn(6)
			child := append([]Inst(nil), parent...)
			child[div] = pool.RandomInst(rng)
			items = append(items, ga.BatchItem{Seq: child, Lin: &ga.Lineage{Diverge: div}})
			// An exact duplicate of the parent (a converged clone).
			items = append(items, ga.BatchItem{Seq: append([]Inst(nil), parent...)})
		}
		rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })

		want := make([]ga.BatchResult, len(items))
		for i, it := range items {
			fit, dom, err := lm.MeasureLineage(it.Seq, it.Lin)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = ga.BatchResult{Fitness: fit, DominantHz: dom}
		}
		for _, parallelism := range []int{1, 8} {
			got, err := bm.MeasureBatch(items, parallelism)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(items) {
				t.Fatalf("trial %d j=%d: %d results for %d items", trial, parallelism, len(got), len(items))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("trial %d j=%d item %d: batch %+v, scalar %+v",
						trial, parallelism, i, got[i], want[i])
				}
			}
		}
	}
	bs := bench.BatchStats()
	if bs.DedupHits == 0 {
		t.Errorf("duplicate-salted populations produced no dedup hits: %+v", bs)
	}
	if bs.MemoHits == 0 {
		t.Errorf("repeated batches produced no memo hits: %+v", bs)
	}
	if bs.Measured+bs.DedupHits+bs.MemoHits != bs.Items {
		t.Errorf("batch accounting leak: %+v", bs)
	}
}
