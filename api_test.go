package emnoise

import (
	"net"
	"strings"
	"testing"
	"time"
)

func TestPublicQuickstartFlow(t *testing.T) {
	plat, err := JunoR2()
	if err != nil {
		t.Fatal(err)
	}
	bench, err := NewBench(plat, 1)
	if err != nil {
		t.Fatal(err)
	}
	bench.Samples = 3
	a72, err := plat.Domain(DomainA72)
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := bench.FastResonanceSweep(a72, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.ResonanceHz < 60e6 || sweep.ResonanceHz > 80e6 {
		t.Fatalf("resonance %v", sweep.ResonanceHz)
	}
	cfg := DefaultGAConfig(a72.Spec.Pool())
	cfg.PopulationSize, cfg.Generations = 10, 4
	res, err := bench.GenerateVirus(a72, cfg, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Best.Seq) != cfg.SeqLen {
		t.Fatalf("virus length %d", len(res.Best.Seq))
	}
	// Assembly round trip through the facade.
	text := FormatProgram(a72.Spec.Pool(), res.Best.Seq)
	back, err := ParseProgram(a72.Spec.Pool(), text)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(res.Best.Seq) {
		t.Fatal("round trip lost instructions")
	}
}

func TestPublicWorkloadsAndVmin(t *testing.T) {
	plat, err := AMDDesktop()
	if err != nil {
		t.Fatal(err)
	}
	d, err := plat.Domain(DomainAthlon)
	if err != nil {
		t.Fatal(err)
	}
	w, err := WorkloadByName("prime95")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w.Build(d.Spec.Pool())
	if err != nil {
		t.Fatal(err)
	}
	tester := NewVminTester(d, 1)
	res, err := tester.Search(Load{Seq: seq, ActiveCores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.VminV <= 0 || res.Outcome == Pass {
		t.Fatalf("vmin result %+v", res)
	}
	if len(Workloads()) < 15 {
		t.Fatalf("only %d workloads", len(Workloads()))
	}
}

func TestPublicPoolXML(t *testing.T) {
	var b strings.Builder
	if err := WritePoolXML(&b, ARM64Pool()); err != nil {
		t.Fatal(err)
	}
	p, err := LoadPoolXML(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if p.Arch != ARM64 {
		t.Fatalf("arch %v", p.Arch)
	}
	if X86Pool().Arch != X86 {
		t.Fatal("x86 pool arch")
	}
}

func TestPublicExperiments(t *testing.T) {
	if len(Experiments()) != 19 {
		t.Fatalf("%d experiments", len(Experiments()))
	}
	e, err := ExperimentByID("fig6")
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewExperimentContext(ExperimentOptions{Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "fig6" || res.Text == "" {
		t.Fatalf("result %+v", res)
	}
}

func TestPublicLab(t *testing.T) {
	plat, err := JunoR2()
	if err != nil {
		t.Fatal(err)
	}
	bench, err := NewBench(plat, 1)
	if err != nil {
		t.Fatal(err)
	}
	bench.Samples = 3
	srv, err := NewLabServer(bench)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = srv.Serve(ln) }()
	c, err := DialLab(ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	name, domains, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if name == "" || len(domains) != 2 {
		t.Fatalf("info %q %v", name, domains)
	}
}

func TestPublicCoreConstructors(t *testing.T) {
	for _, cfg := range []CoreConfig{CortexA72Core(), CortexA53Core(), AthlonIICore()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	ant := DefaultLoopAntenna()
	if err := ant.Validate(); err != nil {
		t.Fatal(err)
	}
	band := DefaultBand()
	if band.Lo >= band.Hi {
		t.Fatal("band inverted")
	}
	if NewOCDSO(1) == nil || NewBenchScope(1) == nil || NewSCL(0.5) == nil {
		t.Fatal("instrument constructors returned nil")
	}
}
