GO ?= go
BENCH_OUT ?= BENCH_pr4.json

.PHONY: all build test tier1 race vet bench bench-all bench-compare chaos fmt

all: build test

# Tier-1: the repository's baseline gate.
build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The gate runs vet and forces fresh test execution (no cached results), so
# a flaky or order-dependent test cannot hide behind the build cache.
tier1: build vet
	GOFLAGS=-count=1 $(GO) test ./...

# Chaos: the remote-lab fault-injection suite (deterministic drop/delay/
# garble proxy, reconnect-and-replay, pooled GA vs direct equivalence)
# under the race detector. The transport's retry loop, the per-session
# server state and the pool checkout all run concurrently here.
chaos:
	$(GO) test -race ./internal/lab/chaos
	$(GO) test -race -run 'Chaos|Reconnect|Deadline|Pool|Concurrent|Shutdown|Desync|Garbled' ./internal/lab

# Tier-2: vet plus the race detector over the full module. The concurrent
# paths (GA worker pool, parallel sweeps/shmoos, the spectra cache, the
# FFT plan caches and the remote-lab client pool) must stay race-clean.
race: tier1 chaos
	$(GO) vet ./...
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Hot-path benchmarks (cold vs cache-served sweep, shmoo, spectra, fitness
# and lineage evaluation), recorded as $(BENCH_OUT) for regression diffing:
#   make bench BENCH_OUT=BENCH_pr5.json
bench:
	$(GO) test -bench 'BenchmarkSpectraEvaluation|BenchmarkFitnessEvaluation|BenchmarkResonanceSweep|BenchmarkShmoo|BenchmarkLineage' \
		-benchmem -benchtime 1s -run '^$$' . | $(GO) run ./cmd/benchjson -o $(BENCH_OUT)

# Diff two benchmark reports; exits nonzero if any benchmark present in
# both regressed more than 20% in ns/op:
#   make bench-compare OLD=BENCH_pr3.json NEW=BENCH_pr4.json
OLD ?= BENCH_pr3.json
NEW ?= $(BENCH_OUT)
bench-compare:
	$(GO) run ./cmd/benchjson -compare $(OLD) $(NEW)

# The full benchmark suite, one iteration each (smoke).
bench-all:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

fmt:
	gofmt -l .
