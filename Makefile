GO ?= go
BENCH_OUT ?= BENCH_pr9.json

.PHONY: all build test tier1 tier1-remote tier1-fleet specs-verify race vet bench bench-all bench-compare perf-gate chaos fmt cache-stress

all: build test

# Tier-1: the repository's baseline gate.
build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The gate runs fmt and vet and forces fresh test execution (no cached
# results), so a flaky or order-dependent test cannot hide behind the
# build cache. The persistent store is cross-process shared mutable state,
# so its whole suite runs under the race detector here.
tier1: build fmt vet specs-verify tier1-remote tier1-fleet
	GOFLAGS=-count=1 $(GO) test -race ./internal/castore
	GOFLAGS=-count=1 $(GO) test ./...

# Spec hygiene: every embedded platform spec must strict-parse, build,
# survive a save/load round trip and keep its persistent-cache identity
# stable across it (specgen -check-builtin), and the byte-identity pins
# against the pre-registry constructors must hold.
specs-verify:
	$(GO) run ./cmd/specgen -check-builtin
	GOFLAGS=-count=1 $(GO) test -run 'Registry|Spec|Arch|DefineArch' ./internal/platform ./internal/isa

# Local/remote backend equivalence: the lab protocol v2 suite and the
# Backend interface tests, which drive every command's measurement path
# against an in-process labtarget (including through the chaos proxy) and
# require bit-identical output to a local bench.
tier1-remote:
	GOFLAGS=-count=1 $(GO) test -run 'Hello|Caps|V2|Chaos|Monitor|Stats|Equivalence|Capability|Determinism|FlagInventory' \
		./internal/lab ./internal/backend ./internal/cli

# Fleet: the campaign orchestrator's chaos suite under the race detector —
# bit-identity of sharded GA generations / sweeps / shmoo lattices against
# a single backend at several layouts, a rig killed mid-campaign failing
# over onto survivors, checkpoint restart replaying without re-measuring,
# and the pool close-under-load and batch-parallelism regressions the
# orchestrator leans on.
tier1-fleet:
	GOFLAGS=-count=1 $(GO) test -race ./internal/fleet
	GOFLAGS=-count=1 $(GO) test -race -run 'PoolCloseUnderLoad|SweepAtMatchesDirect' ./internal/lab
	GOFLAGS=-count=1 $(GO) test -race -run 'MeasureBatchParallelismZero|BatchMemoKeyedByReceiveChain' ./internal/core

# Chaos: the remote-lab fault-injection suite (deterministic drop/delay/
# garble proxy, reconnect-and-replay, pooled GA vs direct equivalence)
# under the race detector. The transport's retry loop, the per-session
# server state and the pool checkout all run concurrently here.
chaos:
	$(GO) test -race ./internal/lab/chaos
	$(GO) test -race -run 'Chaos|Reconnect|Deadline|Pool|Concurrent|Shutdown|Desync|Garbled' ./internal/lab

# Tier-2: vet plus the race detector over the full module. The concurrent
# paths (GA worker pool, parallel sweeps/shmoos, the spectra cache, the
# FFT plan caches and the remote-lab client pool) must stay race-clean.
race: tier1 chaos
	$(GO) vet ./...
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Hot-path benchmarks (cold vs cache-served sweep, shmoo, spectra, fitness
# and lineage evaluation), recorded as $(BENCH_OUT) for regression diffing:
#   make bench BENCH_OUT=BENCH_pr5.json
bench:
	$(GO) test -bench 'BenchmarkSpectraEvaluation|BenchmarkFitnessEvaluation|BenchmarkResonanceSweep|BenchmarkShmoo|BenchmarkLineage|BenchmarkGenerationBatch|BenchmarkFleetGeneration|BenchmarkWarmStart' \
		-benchmem -benchtime 1s -run '^$$' . | $(GO) run ./cmd/benchjson -o $(BENCH_OUT)

# Diff two benchmark reports; exits nonzero if any benchmark present in
# both regressed more than 20% in ns/op:
#   make bench-compare OLD=BENCH_pr3.json NEW=BENCH_pr4.json
OLD ?= BENCH_pr3.json
NEW ?= $(BENCH_OUT)
bench-compare:
	$(GO) run ./cmd/benchjson -compare $(OLD) $(NEW)

# One-shot perf gate: record the current head's hot-path numbers and diff
# them against the last checked-in baseline (fails on a >20% ns/op
# regression, and prints the cross-PR trajectory table on success):
#   make perf-gate
# The bench regex includes the fleet merge path (BenchmarkFleetGeneration),
# so a coordination-tax regression in the orchestrator trips the same gate
# as a hot-path one; benchmarks absent from the old baseline are reported
# but not compared.
perf-gate:
	$(MAKE) bench BENCH_OUT=BENCH_head.json
	$(MAKE) bench-compare OLD=BENCH_pr8.json NEW=BENCH_head.json

# Hammers the persistent store's concurrent surface (mixed Put/Get/Do under
# GC pressure, singleflight, cross-handle sharing) repeatedly under the
# race detector. Longer than tier-1; run before touching castore internals.
cache-stress:
	$(GO) test -race -run 'StoreConcurrentAccess|DoSingleflight|CrossStoreSharing|GCEvicts' \
		-count=10 ./internal/castore

# The full benchmark suite, one iteration each (smoke).
bench-all:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Fails (listing the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
