GO ?= go

.PHONY: all build test tier1 race vet bench bench-all chaos fmt

all: build test

# Tier-1: the repository's baseline gate.
build:
	$(GO) build ./...

test: build
	$(GO) test ./...

tier1: test

# Chaos: the remote-lab fault-injection suite (deterministic drop/delay/
# garble proxy, reconnect-and-replay, pooled GA vs direct equivalence)
# under the race detector. The transport's retry loop, the per-session
# server state and the pool checkout all run concurrently here.
chaos:
	$(GO) test -race ./internal/lab/chaos
	$(GO) test -race -run 'Chaos|Reconnect|Deadline|Pool|Concurrent|Shutdown|Desync|Garbled' ./internal/lab

# Tier-2: vet plus the race detector over the full module. The concurrent
# paths (GA worker pool, parallel sweeps/shmoos, the spectra cache, the
# FFT plan caches and the remote-lab client pool) must stay race-clean.
race: tier1 chaos
	$(GO) vet ./...
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Hot-path benchmarks (cold vs trace-cached sweep, shmoo, spectra and
# fitness evaluation), recorded as BENCH_pr3.json for regression diffing.
bench:
	$(GO) test -bench 'BenchmarkSpectraEvaluation|BenchmarkFitnessEvaluation|BenchmarkResonanceSweep|BenchmarkShmoo' \
		-benchmem -benchtime 1s -run '^$$' . | $(GO) run ./cmd/benchjson -o BENCH_pr3.json

# The full benchmark suite, one iteration each (smoke).
bench-all:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

fmt:
	gofmt -l .
