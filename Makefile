GO ?= go

.PHONY: all build test race vet bench fmt

all: build test

# Tier-1: the repository's baseline gate.
build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Tier-2: vet plus the race detector over the full module. The concurrent
# paths (GA worker pool, parallel sweeps/shmoos, the spectra cache and the
# FFT plan caches) must stay race-clean.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

fmt:
	gofmt -l .
